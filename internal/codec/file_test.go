package codec

// Unit tests for the checkpoint-file layer: the aligned writer's
// layout invariant, the atomic file write, and the in-place parser's
// rejection surface — every malformed input must come back as an
// ErrMmap-wrapped error, never a panic, and never an allocation sized
// by attacker-claimed lengths.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/registry"
	"repro/internal/sketch"
)

// fileDesc is the shape used by every test in this file.
var fileDesc = Desc{Algo: registry.CountMin, N: 300, S: 16, D: 3, Seed: 9}

func fileSketch(t testing.TB) sketch.Sketch {
	t.Helper()
	sk, err := registry.SafeNew(fileDesc.Algo, fileDesc.Shape())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i += 3 {
		sk.Update(i, float64(1+i%7))
	}
	return sk
}

// The aligned container must (a) place the state payload at an 8-byte
// file offset and (b) remain a decodable v2 sketch container for
// stream readers that have never heard of the alignment.
func TestEncodeSketchAlignedLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSketchAligned(&buf, fileDesc, fileSketch(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	desc, _, payload, err := parseMappedSketch(data)
	if err != nil {
		t.Fatalf("parse of own output: %v", err)
	}
	if desc.Algo != fileDesc.Algo || desc.N != fileDesc.N || desc.Seed != fileDesc.Seed {
		t.Fatalf("descriptor mismatch: %+v", desc)
	}
	stateOff := len(data) - len(payload)
	if stateOff%8 != 0 {
		t.Fatalf("state payload at offset %d, want 8-aligned", stateOff)
	}

	// A stream decoder sees an ordinary container.
	loaded, ldesc, err := DecodeSketch(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stream decode of aligned container: %v", err)
	}
	if ldesc.Algo != fileDesc.Algo {
		t.Fatalf("stream decode algo %q", ldesc.Algo)
	}
	ref := fileSketch(t)
	for i := 0; i < fileDesc.N; i += 7 {
		if loaded.Query(i) != ref.Query(i) {
			t.Fatalf("Query(%d) disagrees after stream decode", i)
		}
	}
}

// The alignment arithmetic must hold for every descriptor name length,
// not just the algorithms that happen to exist — drive the section
// builder directly across name lengths.
func TestAlignedSectionsForAllNameLengths(t *testing.T) {
	for nameLen := 1; nameLen <= 24; nameLen++ {
		desc := fileDesc
		desc.Algo = string(bytes.Repeat([]byte{'x'}, nameLen))
		secs := alignedSketchSections(desc, secState, make([]byte, 40))
		dlen := len(secs[0].payload)
		padLen := len(secs[1].payload)
		stateOff := 9 + 9 + dlen + 9 + padLen + 9
		if stateOff%8 != 0 {
			t.Errorf("name length %d: state offset %d not aligned (pad %d)", nameLen, stateOff, padLen)
		}
		if padLen >= 8 {
			t.Errorf("name length %d: pad %d is not minimal", nameLen, padLen)
		}
	}
}

func TestWriteSketchFileAtomicAndServable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sk.bas2")
	if err := WriteSketchFile(path, fileDesc, fileSketch(t)); err != nil {
		t.Fatal(err)
	}
	// No temp litter after a successful publish.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "sk.bas2" {
		t.Fatalf("directory holds %v, want just sk.bas2", entries)
	}

	sk, desc, closeMap, err := OpenMmapSketch(path)
	if err != nil {
		t.Fatalf("OpenMmapSketch: %v", err)
	}
	defer closeMap()
	if desc.Backend != sketch.BackendMmap {
		t.Fatalf("desc backend %v", desc.Backend)
	}
	ref := fileSketch(t)
	for i := 0; i < fileDesc.N; i += 7 {
		if sk.Query(i) != ref.Query(i) {
			t.Fatalf("Query(%d): mapped %v, dense %v", i, sk.Query(i), ref.Query(i))
		}
	}

	// A failed write must not clobber the published file: an exact
	// sketch has no standalone container encoding.
	ex, err := registry.SafeNew(registry.Exact, registry.Shape{N: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSketchFile(path, Desc{Algo: registry.Exact, N: 50}, ex); err == nil {
		t.Fatal("exact sketch should not be writable as a checkpoint file")
	}
	if _, _, cl, err := OpenMmapSketch(path); err != nil {
		t.Fatalf("published file damaged by failed write: %v", err)
	} else {
		cl()
	}
	if err := WriteSketchFile(filepath.Join(dir, "missing", "sk.bas2"), fileDesc, fileSketch(t)); err == nil {
		t.Fatal("unwritable directory should error")
	}
}

func TestDirOf(t *testing.T) {
	cases := map[string]string{
		"a/b/c.bas2": "a/b",
		"/c.bas2":    "/",
		"c.bas2":     ".",
	}
	for in, want := range cases {
		if got := dirOf(in); got != want {
			t.Errorf("dirOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// validAlignedBytes returns a well-formed aligned container to corrupt.
func validAlignedBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSketchAligned(&buf, fileDesc, fileSketch(t)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseMappedSketchRejections(t *testing.T) {
	valid := validAlignedBytes(t)
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": valid[:5],
		"bad magic":    mut(func(b []byte) []byte { b[0] = 'X'; return b }),
		"v1 magic":     append([]byte(MagicV1), valid[4:]...),
		"wrong kind":   mut(func(b []byte) []byte { b[4] = KindSharded; return b }),
		"two sections": mut(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[5:], 2); return b }),
		"desc tag":     mut(func(b []byte) []byte { b[9] = secState; return b }),
		"desc oversize": mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[10:], uint64(len(b))) // claims past EOF
			return b
		}),
		"desc huge": mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[10:], 2+maxNameLen+33) // within file, over desc cap
			return b
		}),
		"name overflow":   mut(func(b []byte) []byte { binary.LittleEndian.PutUint16(b[18:], maxNameLen+1); return b }),
		"unknown algo":    mut(func(b []byte) []byte { b[20] = 'z'; b[21] = 'z'; return b }),
		"truncated state": valid[:len(valid)-4],
		"trailing bytes":  append(append([]byte(nil), valid...), 0xAB),
	}
	// "desc huge" needs the claimed length to fit in the file; grow it.
	cases["desc huge"] = append(cases["desc huge"], make([]byte, 2+maxNameLen+64)...)
	for name, data := range cases {
		if _, _, _, err := parseMappedSketch(data); !errors.Is(err, ErrMmap) {
			t.Errorf("%s: err = %v, want ErrMmap", name, err)
		}
	}
	if _, _, _, err := parseMappedSketch(valid); err != nil {
		t.Errorf("control: valid container rejected: %v", err)
	}
}

func TestParseMappedSketchStateBound(t *testing.T) {
	// A state section larger than the shape bound must be rejected even
	// when it spans the file exactly: otherwise a tiny descriptor could
	// make the opener serve gigabytes as one sketch.
	valid := validAlignedBytes(t)
	grown := append([]byte(nil), valid...)
	extra := int(stateBound(fileDesc, mustEntry(t, fileDesc.Algo))) // push well past the bound
	grown = append(grown, make([]byte, extra)...)
	// Fix up the state section length to span the grown file.
	stateLenOff := stateSectionLenOffset(t, valid)
	binary.LittleEndian.PutUint64(grown[stateLenOff:],
		binary.LittleEndian.Uint64(valid[stateLenOff:])+uint64(extra))
	if _, _, _, err := parseMappedSketch(grown); !errors.Is(err, ErrMmap) {
		t.Errorf("oversized state: err = %v, want ErrMmap", err)
	}
}

func mustEntry(t testing.TB, algo string) *registry.Entry {
	t.Helper()
	e, ok := registry.Lookup(algo)
	if !ok {
		t.Fatalf("no registry entry %q", algo)
	}
	return e
}

// stateSectionLenOffset walks the three headers of a valid aligned
// container and returns the file offset of the state section's length.
func stateSectionLenOffset(t testing.TB, data []byte) int {
	t.Helper()
	off := 9
	for s := 0; s < 2; s++ {
		_, n, err := mappedSectionHeader(data, off)
		if err != nil {
			t.Fatal(err)
		}
		off += 9 + int(n)
	}
	return off + 1
}

func TestOpenMmapSketchRejectsCapabilityAndFiles(t *testing.T) {
	dir := t.TempDir()
	if _, _, _, err := OpenMmapSketch(filepath.Join(dir, "absent")); !errors.Is(err, ErrMmap) {
		t.Errorf("missing file: %v, want ErrMmap", err)
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenMmapSketch(empty); !errors.Is(err, ErrMmap) {
		t.Errorf("empty file: %v, want ErrMmap", err)
	}

	// An algorithm without mmap capability: valid file, typed refusal.
	cbDesc := Desc{Algo: registry.CounterBraid, N: 64, S: 16, D: 3, Seed: 1}
	cb, err := registry.SafeNew(cbDesc.Algo, cbDesc.Shape())
	if err != nil {
		t.Fatal(err)
	}
	cb.Update(3, 5)
	path := filepath.Join(dir, "cb.bas2")
	if err := WriteSketchFile(path, cbDesc, cb); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = OpenMmapSketch(path)
	if !errors.Is(err, ErrMmap) || !errors.Is(err, sketch.ErrBackendUnsupported) {
		t.Errorf("counterbraids by mmap: %v, want ErrMmap and ErrBackendUnsupported", err)
	}
}

func TestDecodeSketchBackend(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, fileDesc, fileSketch(t)); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	// Compressed restore answers like the dense original.
	comp, desc, err := DecodeSketchBackend(bytes.NewReader(stream),
		sketch.Backend{Kind: sketch.BackendCompressed})
	if err != nil {
		t.Fatal(err)
	}
	if desc.Backend != sketch.BackendCompressed {
		t.Fatalf("desc backend %v", desc.Backend)
	}
	ref := fileSketch(t)
	for i := 0; i < fileDesc.N; i += 7 {
		if comp.Query(i) != ref.Query(i) {
			t.Fatalf("Query(%d) disagrees after compressed restore", i)
		}
	}

	// Mmap needs a file, not a stream.
	if _, _, err := DecodeSketchBackend(bytes.NewReader(stream),
		sketch.Backend{Kind: sketch.BackendMmap}); !errors.Is(err, ErrMmap) {
		t.Errorf("mmap from stream: %v, want ErrMmap", err)
	}

	// v1 payloads restore dense-only.
	var v1 bytes.Buffer
	if err := EncodeV1(&v1, fileDesc, fileSketch(t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSketchBackend(bytes.NewReader(v1.Bytes()),
		sketch.Backend{Kind: sketch.BackendCompressed}); err == nil {
		t.Error("v1 payload on compressed backend should error")
	}
	v1dense, _, err := DecodeSketchBackend(bytes.NewReader(v1.Bytes()), sketch.Backend{})
	if err != nil {
		t.Fatalf("v1 dense restore: %v", err)
	}
	if v1dense.Query(3) != ref.Query(3) {
		t.Error("v1 dense restore disagrees")
	}
}
