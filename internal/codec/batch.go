package codec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file defines the ingest-batch frame: a v2 container carrying a
// (idx, delta) update batch — the unit a sketch server's ingest
// endpoint accepts and routes straight into UpdateBatch. The frame is
// deliberately sketch-agnostic (no descriptor section): the receiver
// already knows which sketch the batch targets and validates every
// index against that sketch's dimension at decode time, so a hostile
// payload can never drive an out-of-range update.
//
// Layout: the v2 magic, KindBatch, one section (secBatch) whose
// payload is a u32 element count followed by count × (u64 index,
// f64 delta), all little-endian.

// MaxBatchLen bounds the element count one batch frame may carry.
// Ingest pipelines amortize per-batch costs at a few hundred to a few
// thousand elements; a million-element frame is either a unit mistake
// or a hostile length, and bounding it keeps the decode-side
// allocation proportional to real traffic.
const MaxBatchLen = 1 << 20

// batchBound is the largest well-formed secBatch payload: the count
// prefix plus 16 bytes per element.
const batchBound = 4 + 16*MaxBatchLen

// EncodeBatch writes the update batch (idx, deltas) to w as a v2 batch
// container. The slices must have equal length, at most MaxBatchLen
// elements, and every index must be non-negative; deltas may be any
// float64 (the turnstile model), but NaN is rejected — no sketch
// accepts it and a reject at encode time beats a poisoned counter.
func EncodeBatch(w io.Writer, idx []int, deltas []float64) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("codec: batch index count %d != delta count %d", len(idx), len(deltas))
	}
	if len(idx) > MaxBatchLen {
		return fmt.Errorf("codec: batch length %d exceeds MaxBatchLen %d", len(idx), MaxBatchLen)
	}
	payload := make([]byte, 0, 4+16*len(idx))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(idx)))
	for j, i := range idx {
		if i < 0 {
			return fmt.Errorf("codec: batch index %d is negative", i)
		}
		if math.IsNaN(deltas[j]) {
			return fmt.Errorf("codec: batch delta %d is NaN", j)
		}
		payload = binary.LittleEndian.AppendUint64(payload, uint64(i))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(deltas[j]))
	}
	return writeContainer(w, KindBatch, []section{{secBatch, payload}})
}

// DecodeBatch reads one batch container from r, validating every index
// against dim: the caller names the dimension of the sketch the batch
// targets, and any index at or beyond it — or any malformed framing,
// implausible count, or NaN delta — errors before a single update
// could be applied. Trailing bytes after the container are left
// unread, so batch frames compose on a stream.
func DecodeBatch(r io.Reader, dim int) (idx []int, deltas []float64, err error) {
	if dim <= 0 {
		return nil, nil, fmt.Errorf("codec: batch target dimension %d must be positive", dim)
	}
	version, kind, nsec, err := readHeader(r)
	if err != nil {
		return nil, nil, err
	}
	if version != 2 || kind != KindBatch {
		return nil, nil, fmt.Errorf("codec: container holds a %s, not an update batch", kindName(kind))
	}
	if nsec != 1 {
		return nil, nil, fmt.Errorf("codec: batch container has %d sections, want 1", nsec)
	}
	n, err := readSectionHeader(r, secBatch)
	if err != nil {
		return nil, nil, err
	}
	payload, err := readPayload(r, n, batchBound)
	if err != nil {
		return nil, nil, err
	}
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("codec: batch section truncated")
	}
	count := binary.LittleEndian.Uint32(payload)
	if count > MaxBatchLen {
		return nil, nil, fmt.Errorf("codec: batch length %d exceeds MaxBatchLen %d", count, MaxBatchLen)
	}
	if uint64(len(payload)) != 4+16*uint64(count) {
		return nil, nil, fmt.Errorf("codec: batch section is %d bytes for %d elements, want %d",
			len(payload), count, 4+16*uint64(count))
	}
	idx = make([]int, count)
	deltas = make([]float64, count)
	for j := range idx {
		off := 4 + 16*j
		i := binary.LittleEndian.Uint64(payload[off:])
		if i >= uint64(dim) {
			return nil, nil, fmt.Errorf("codec: batch index %d out of range [0,%d)", i, dim)
		}
		d := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
		if math.IsNaN(d) {
			return nil, nil, fmt.Errorf("codec: batch delta %d is NaN", j)
		}
		idx[j] = int(i)
		deltas[j] = d
	}
	return idx, deltas, nil
}
