package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/registry"
	"repro/internal/sketch"
)

// serializable is every algorithm the single-sketch formats carry.
var serializable = []string{
	"l1sr", "l2sr", "l1mean", "l2mean", "countmin", "countmedian",
	"countsketch", "cmcu", "cmlcu", "dengrafiei",
}

func ingested(t testing.TB, desc Desc) sketch.Sketch {
	t.Helper()
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	r := rand.New(rand.NewSource(1))
	for u := 0; u < 30000; u++ {
		sk.Update(r.Intn(desc.N), float64(1+r.Intn(5)))
	}
	return sk
}

// Both format versions must round-trip every serializable algorithm
// with exact query equality.
func TestRoundTripAllSerializable(t *testing.T) {
	encoders := map[string]func(w *bytes.Buffer, d Desc, sk sketch.Sketch) error{
		"v1": func(w *bytes.Buffer, d Desc, sk sketch.Sketch) error { return EncodeV1(w, d, sk) },
		"v2": func(w *bytes.Buffer, d Desc, sk sketch.Sketch) error { return EncodeSketch(w, d, sk) },
	}
	for version, enc := range encoders {
		for _, algo := range serializable {
			t.Run(version+"/"+algo, func(t *testing.T) {
				desc := Desc{Algo: algo, N: 20000, S: 256, D: 7, Seed: 99}
				orig := ingested(t, desc)
				var buf bytes.Buffer
				if err := enc(&buf, desc, orig); err != nil {
					t.Fatalf("encode: %v", err)
				}
				loaded, gotDesc, err := DecodeSketch(&buf)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if gotDesc != desc {
					t.Fatalf("desc round-trip %+v != %+v", gotDesc, desc)
				}
				for i := 0; i < desc.N; i += 97 {
					if a, b := orig.Query(i), loaded.Query(i); a != b {
						t.Fatalf("query %d: %f != %f", i, a, b)
					}
				}
			})
		}
	}
}

// Legend names resolve the same algorithms as canonical names, so a
// stream written under either loads.
func TestRoundTripLegendNames(t *testing.T) {
	for _, algo := range []string{"l2-S/R", "CM", "CS", "CM-CU", "Deng-Rafiei"} {
		desc := Desc{Algo: algo, N: 500, S: 16, D: 3, Seed: 4}
		orig := ingested(t, desc)
		var buf bytes.Buffer
		if err := EncodeSketch(&buf, desc, orig); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		loaded, gotDesc, err := DecodeSketch(&buf)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if gotDesc.Algo != algo {
			t.Errorf("%s: algo rewritten to %q", algo, gotDesc.Algo)
		}
		if loaded.Query(3) != orig.Query(3) {
			t.Errorf("%s: query mismatch", algo)
		}
	}
}

// The v2 container records the hash family; v1 predates it and must
// refuse anything but pairwise rather than silently dropping the
// family (a pairwise restore of a tabulation plane would answer
// queries from the wrong buckets).
func TestHashFamilyOnTheWire(t *testing.T) {
	desc := Desc{Algo: "countmin", N: 20000, S: 256, D: 7, Seed: 99, Hash: sketch.HashTabulation}
	sk, err := registry.SafeNew(desc.Algo, desc.Shape())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for u := 0; u < 30000; u++ {
		sk.Update(r.Intn(desc.N), float64(1+r.Intn(5)))
	}

	var buf bytes.Buffer
	if err := EncodeV1(&buf, desc, sk); !errors.Is(err, sketch.ErrHashUnsupported) {
		t.Errorf("EncodeV1(tabulation): got %v, want ErrHashUnsupported", err)
	}

	buf.Reset()
	if err := EncodeSketch(&buf, desc, sk); err != nil {
		t.Fatalf("EncodeSketch: %v", err)
	}
	loaded, gotDesc, err := DecodeSketch(&buf)
	if err != nil {
		t.Fatalf("DecodeSketch: %v", err)
	}
	if gotDesc != desc {
		t.Fatalf("desc round-trip %+v != %+v", gotDesc, desc)
	}
	for i := 0; i < desc.N; i += 97 {
		if a, b := sk.Query(i), loaded.Query(i); a != b {
			t.Fatalf("query %d: %f != %f", i, a, b)
		}
	}

	// A hostile descriptor claiming tabulation for a pairwise-only
	// algorithm must be rejected on decode, not constructed anyway.
	hostile := Desc{Algo: "l1sr", N: 500, S: 16, D: 3, Seed: 4, Hash: sketch.HashTabulation}
	hsk := bench.Make("l1sr", hostile.N, hostile.S, hostile.D, hostile.Seed)
	var crafted bytes.Buffer
	if err := EncodeSketch(&crafted, hostile, hsk); err != nil {
		t.Fatalf("crafting hostile container: %v", err)
	}
	if _, _, err := DecodeSketch(&crafted); !errors.Is(err, sketch.ErrHashUnsupported) {
		t.Errorf("hostile tabulation l1sr container: got %v, want ErrHashUnsupported", err)
	}
}

func TestExactNotSerializableStandalone(t *testing.T) {
	sk := bench.Make("exact", 100, 16, 3, 1)
	desc := Desc{Algo: "exact", N: 100, S: 16, D: 3, Seed: 1}
	var buf bytes.Buffer
	if err := EncodeV1(&buf, desc, sk); err == nil || !strings.Contains(err.Error(), "not serializable") {
		t.Errorf("v1: exact should refuse to serialize, got %v", err)
	}
	if err := EncodeSketch(&buf, desc, sk); err == nil || !strings.Contains(err.Error(), "not serializable") {
		t.Errorf("v2: exact should refuse to serialize, got %v", err)
	}
	// A hand-crafted top-level exact container must be rejected on
	// decode too (exact travels only inside composite checkpoints).
	var crafted bytes.Buffer
	if err := encodeSketchContainer(&crafted, desc, sk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSketch(&crafted); err == nil {
		t.Error("top-level exact container should be rejected")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"bad magic":        []byte("NOPE0000"),
		"v1 truncated":     append([]byte(MagicV1), 1, 0, 0),
		"v2 header only":   []byte(MagicV2),
		"v2 kind only":     append([]byte(MagicV2), KindSketch),
		"v2 wrong kind":    append([]byte(MagicV2), 99, 2, 0, 0, 0),
		"v2 zero sections": append([]byte(MagicV2), KindSketch, 0, 0, 0, 0),
	}
	for name, b := range cases {
		if _, _, err := DecodeSketch(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: DecodeSketch should fail", name)
		}
	}
}

func TestDecodeRejectsUnknownAlgo(t *testing.T) {
	desc := Desc{Algo: "countmedian", N: 100, S: 16, D: 3, Seed: 5}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	for _, enc := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return EncodeV1(b, desc, sk) },
		func(b *bytes.Buffer) error { return EncodeSketch(b, desc, sk) },
	} {
		var buf bytes.Buffer
		if err := enc(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		// Corrupt the algorithm name (it appears right after its length
		// prefix in both formats; find it by content).
		i := bytes.Index(raw, []byte("countmedian"))
		if i < 0 {
			t.Fatal("name not found in payload")
		}
		raw[i] = 'Z'
		if _, _, err := DecodeSketch(bytes.NewReader(raw)); err == nil {
			t.Error("corrupted algorithm name should fail")
		}
	}
}

func TestTruncatedPayloadDetected(t *testing.T) {
	desc := Desc{Algo: "l2sr", N: 1000, S: 64, D: 3, Seed: 2}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	for _, enc := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return EncodeV1(b, desc, sk) },
		func(b *bytes.Buffer) error { return EncodeSketch(b, desc, sk) },
	} {
		var buf bytes.Buffer
		if err := enc(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		if _, _, err := DecodeSketch(bytes.NewReader(raw[:len(raw)-4])); err == nil {
			t.Error("truncated payload should fail")
		}
	}
}

// A hostile length prefix far beyond the shape bound must be rejected
// before any allocation it implies; one within the bound but beyond
// the actual input must error on the short read, not OOM.
func TestHostileSectionLengths(t *testing.T) {
	desc := Desc{Algo: "countmin", N: 200, S: 16, D: 3, Seed: 1}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, desc, sk); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The state section header sits right after the desc section:
	// magic(4) + kind(1) + nsec(4) + descHdr(9) + descPayload.
	stateHdr := 9 + 9 + (2 + len("countmin") + 32)
	if raw[stateHdr] != secState {
		t.Fatalf("layout drifted: tag %d at %d", raw[stateHdr], stateHdr)
	}
	for _, claim := range []uint64{1 << 62, 1 << 40, uint64(len(raw))} {
		mut := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint64(mut[stateHdr+1:], claim)
		if _, _, err := DecodeSketch(bytes.NewReader(mut)); err == nil {
			t.Errorf("claimed state length %d should fail", claim)
		}
	}
}

// readPayload must reject over-bound lengths and error on short input
// after at most one chunk of allocation.
func TestReadPayloadBounds(t *testing.T) {
	if _, err := readPayload(bytes.NewReader(nil), 10, 5); err == nil {
		t.Error("over-bound length accepted")
	}
	// Claims 64MB, supplies 3 bytes: must error (and by construction
	// allocate at most one chunk before noticing).
	if _, err := readPayload(bytes.NewReader([]byte{1, 2, 3}), 64<<20, 1<<30); err == nil {
		t.Error("short input accepted")
	}
	// Large payloads that are actually present round-trip.
	big := bytes.Repeat([]byte{7}, 3<<20)
	got, err := readPayload(bytes.NewReader(big), uint64(len(big)), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("chunked read corrupted payload")
	}
}

func TestDescValidate(t *testing.T) {
	ok := Desc{Algo: "l2sr", N: 100, S: 16, D: 3, Seed: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid desc rejected: %v", err)
	}
	bad := []Desc{
		{N: 0, S: 16, D: 3},
		{N: 1 << 27, S: 16, D: 3},
		{N: 100, S: 1, D: 3},
		{N: 100, S: 1 << 23, D: 3},
		{N: 100, S: 16, D: 0},
		{N: 100, S: 16, D: 65},
		{N: 100, S: 1 << 20, D: 32},
		{N: 100, S: 16, D: 3, Seed: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: %+v should fail validation", i, d)
		}
	}
}

// DecodeSketch must leave bytes after the container unread — framing
// composes on a stream (the facade's Unmarshal layers strictness on
// top).
func TestDecodeLeavesTrailingBytes(t *testing.T) {
	desc := Desc{Algo: "countmin", N: 100, S: 16, D: 2, Seed: 3}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, desc, sk); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("NEXT-FRAME")
	if _, _, err := DecodeSketch(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "NEXT-FRAME" {
		t.Errorf("trailing bytes consumed: %q left", got)
	}
}

// The v1 writer's bytes must match what the pre-v2 facade produced —
// the compatibility contract behind the checked-in v1 golden vectors.
// This locks the layout: magic, u32 name length, name, four u64s, u64
// payload length, payload.
func TestV1LayoutFrozen(t *testing.T) {
	desc := Desc{Algo: "countmin", N: 7, S: 4, D: 1, Seed: 9}
	sk := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	var buf bytes.Buffer
	if err := EncodeV1(&buf, desc, sk); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if string(raw[:4]) != MagicV1 {
		t.Fatalf("magic %q", raw[:4])
	}
	if nl := binary.LittleEndian.Uint32(raw[4:]); nl != uint32(len("countmin")) {
		t.Fatalf("name length %d", nl)
	}
	if string(raw[8:16]) != "countmin" {
		t.Fatalf("name %q", raw[8:16])
	}
	nums := raw[16:]
	for i, want := range []uint64{7, 4, 1, 9} {
		if got := binary.LittleEndian.Uint64(nums[8*i:]); got != want {
			t.Fatalf("header field %d = %d, want %d", i, got, want)
		}
	}
}

func TestStateBoundScalesWithShape(t *testing.T) {
	e, _ := registry.Lookup("countmin")
	small := stateBound(Desc{N: 100, S: 16, D: 2}, e)
	large := stateBound(Desc{N: 100, S: 4096, D: 9}, e)
	if small >= large {
		t.Errorf("bound does not scale: %d vs %d", small, large)
	}
	ex, _ := registry.Lookup("exact")
	if b := stateBound(Desc{N: 1000, S: 16, D: 2}, ex); b < 8000 {
		t.Errorf("exact bound %d below vector size", b)
	}
}

func TestChainLen(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {1000, 11},
	} {
		if got := chainLen(tc.n); got != tc.want {
			t.Errorf("chainLen(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestKindNames(t *testing.T) {
	for kind, want := range map[byte]string{
		KindSketch: "sketch", KindSharded: "sharded checkpoint",
		KindWindowed: "windowed checkpoint", KindRange: "range checkpoint",
	} {
		if got := kindName(kind); got != want {
			t.Errorf("kindName(%d) = %q", kind, got)
		}
	}
	if !strings.Contains(kindName(200), "unknown") {
		t.Error("unknown kind not flagged")
	}
}

// Infinities and NaNs in an exact vector must survive the dense
// round-trip bit-for-bit (checkpoints carry whatever the counters
// held).
func TestExactStateRoundTripsSpecialFloats(t *testing.T) {
	sk := bench.Make("exact", 8, 16, 3, 1)
	sk.Update(0, math.Inf(1))
	sk.Update(1, -1.5)
	tag, payload, err := captureState(sk)
	if err != nil {
		t.Fatal(err)
	}
	if tag != secExact {
		t.Fatalf("tag %d", tag)
	}
	fresh := bench.Make("exact", 8, 16, 3, 1)
	if err := restoreState(fresh, tag, payload); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Query(0); !math.IsInf(got, 1) {
		t.Errorf("q0 = %v", got)
	}
	if got := fresh.Query(1); got != -1.5 {
		t.Errorf("q1 = %v", got)
	}
}

// Error paths the happy-path tests never reach: malformed descriptor
// sections, mismatched state tags, nested-framing violations, and
// constructor failures surfaced through the probe.
func TestDecodeErrorPaths(t *testing.T) {
	good := Desc{Algo: "countmin", N: 100, S: 16, D: 2, Seed: 1}
	sk := bench.Make(good.Algo, good.N, good.S, good.D, good.Seed)

	t.Run("desc section too short", func(t *testing.T) {
		var buf bytes.Buffer
		if err := writeContainer(&buf, KindSketch, []section{{secDesc, []byte{1}}, {secState, nil}}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeSketch(&buf); err == nil {
			t.Error("1-byte desc accepted")
		}
	})
	t.Run("desc name length lies", func(t *testing.T) {
		p := descPayload(good)
		binary.LittleEndian.PutUint16(p, 200) // name claims 200 bytes
		var buf bytes.Buffer
		if err := writeContainer(&buf, KindSketch, []section{{secDesc, p}, {secState, nil}}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeSketch(&buf); err == nil {
			t.Error("lying name length accepted")
		}
	})
	t.Run("state tag mismatch", func(t *testing.T) {
		// An exact state section under a hashed algorithm's desc.
		var buf bytes.Buffer
		if err := writeContainer(&buf, KindSketch, []section{
			{secDesc, descPayload(good)},
			{secExact, make([]byte, 8*good.N)},
		}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeSketch(&buf); err == nil {
			t.Error("exact state for hashed algorithm accepted")
		}
	})
	t.Run("exact state wrong length", func(t *testing.T) {
		ex := Desc{Algo: "exact", N: 10, S: 16, D: 2, Seed: 1}
		var buf bytes.Buffer
		if err := writeContainer(&buf, KindSketch, []section{
			{secDesc, descPayload(ex)},
			{secExact, make([]byte, 24)}, // 3 floats for dim 10
		}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := decodeSketchContainer(&buf); err == nil {
			t.Error("short exact vector accepted")
		}
	})
	t.Run("unexpected section tag", func(t *testing.T) {
		var buf bytes.Buffer
		if err := writeContainer(&buf, KindSketch, []section{
			{secRangeMeta, nil},
			{secState, nil},
		}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeSketch(&buf); err == nil {
			t.Error("wrong leading section accepted")
		}
	})
	t.Run("wrong section count", func(t *testing.T) {
		var buf bytes.Buffer
		if err := EncodeSketch(&buf, good, sk); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		binary.LittleEndian.PutUint32(raw[5:], 7)
		if _, _, err := DecodeSketch(bytes.NewReader(raw)); err == nil {
			t.Error("wrong section count accepted")
		}
		binary.LittleEndian.PutUint32(raw[5:], maxSections+1)
		if _, _, err := DecodeSketch(bytes.NewReader(raw)); err == nil {
			t.Error("absurd section count accepted")
		}
	})
	t.Run("v1 name too long", func(t *testing.T) {
		raw := append([]byte(MagicV1), 0xff, 0xff, 0, 0)
		if _, _, err := DecodeSketch(bytes.NewReader(raw)); err == nil {
			t.Error("absurd v1 name length accepted")
		}
	})
	t.Run("v1 bad shape", func(t *testing.T) {
		bad := good
		bad.D = 99
		var buf bytes.Buffer
		// EncodeV1 does not validate (the facade constructs only valid
		// shapes); decoding must.
		if err := EncodeV1(&buf, bad, sk); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeSketch(&buf); err == nil {
			t.Error("invalid v1 shape accepted")
		}
	})
	t.Run("state payload rejected by sketch", func(t *testing.T) {
		var buf bytes.Buffer
		if err := writeContainer(&buf, KindSketch, []section{
			{secDesc, descPayload(good)},
			{secState, []byte{1, 2, 3}}, // wrong length for the table
		}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeSketch(&buf); err == nil {
			t.Error("malformed state payload accepted")
		}
	})
}
