package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/registry"
	"repro/internal/sketch"
)

func deltaDesc() Desc {
	return Desc{Algo: "l2sr", N: 500, S: 16, D: 2, Seed: 11}
}

func mkReplica(t testing.TB, d Desc, feed int) sketch.Sketch {
	t.Helper()
	sk, err := registry.SafeNew(d.Algo, d.Shape())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < feed; u++ {
		sk.Update((u*7+3)%d.N, float64(1+u%5))
	}
	return sk
}

func encodeDeltaOK(t testing.TB, f DeltaFrame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDeltaRoundTrip(t *testing.T) {
	d := deltaDesc()
	f := DeltaFrame{Desc: d, Shards: 8, Entries: []DeltaEntry{
		{Shard: 1, Epoch: 3, Sk: mkReplica(t, d, 40)},
		{Shard: 5, Epoch: 9, Sk: mkReplica(t, d, 7)},
	}}
	data := encodeDeltaOK(t, f)
	got, err := DecodeDelta(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Full || got.Shards != 8 || len(got.Entries) != 2 {
		t.Fatalf("frame header mismatch: %+v", got)
	}
	for k, e := range got.Entries {
		want := f.Entries[k]
		if e.Shard != want.Shard || e.Epoch != want.Epoch {
			t.Fatalf("entry %d: got (%d,%d) want (%d,%d)", k, e.Shard, e.Epoch, want.Shard, want.Epoch)
		}
		for i := 0; i < d.N; i += 13 {
			if a, b := e.Sk.Query(i), want.Sk.Query(i); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("entry %d query %d: decoded %v want %v", k, i, a, b)
			}
		}
	}
	// Re-encode must be byte-identical: the frame is a fixed point.
	again := encodeDeltaOK(t, got)
	if !bytes.Equal(data, again) {
		t.Fatal("delta frame re-encode is not byte-identical")
	}
}

func TestDeltaFullFrameRoundTrip(t *testing.T) {
	d := deltaDesc()
	f := DeltaFrame{Desc: d, Full: true, Shards: 3, Entries: []DeltaEntry{
		{Shard: 0, Epoch: 0, Sk: mkReplica(t, d, 0)}, // never-written shard: epoch 0 is legal in full frames
		{Shard: 1, Epoch: 4, Sk: mkReplica(t, d, 10)},
		{Shard: 2, Epoch: 1, Sk: mkReplica(t, d, 3)},
	}}
	got, err := DecodeDelta(bytes.NewReader(encodeDeltaOK(t, f)))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Full || got.Shards != 3 || len(got.Entries) != 3 {
		t.Fatalf("full frame mismatch: %+v", got)
	}
}

func TestEncodeDeltaRejects(t *testing.T) {
	d := deltaDesc()
	rep := mkReplica(t, d, 5)
	exDesc := d
	exDesc.Algo = "exact"
	cuDesc := d
	cuDesc.Algo = "cmcu"
	for name, f := range map[string]DeltaFrame{
		"exact algorithm":      {Desc: exDesc, Shards: 2, Entries: nil},
		"non-linear algorithm": {Desc: cuDesc, Shards: 2, Entries: nil},
		"zero shards":          {Desc: d, Shards: 0},
		"too many shards":      {Desc: d, Shards: MaxShards + 1},
		"more entries than shards": {Desc: d, Shards: 1, Entries: []DeltaEntry{
			{Shard: 0, Epoch: 1, Sk: rep}, {Shard: 1, Epoch: 1, Sk: rep}}},
		"partial full frame": {Desc: d, Full: true, Shards: 2, Entries: []DeltaEntry{
			{Shard: 0, Epoch: 1, Sk: rep}}},
		"out-of-range shard": {Desc: d, Shards: 4, Entries: []DeltaEntry{
			{Shard: 4, Epoch: 1, Sk: rep}}},
		"duplicate shard": {Desc: d, Shards: 4, Entries: []DeltaEntry{
			{Shard: 2, Epoch: 1, Sk: rep}, {Shard: 2, Epoch: 2, Sk: rep}}},
		"unsorted shards": {Desc: d, Shards: 4, Entries: []DeltaEntry{
			{Shard: 3, Epoch: 1, Sk: rep}, {Shard: 1, Epoch: 1, Sk: rep}}},
		"zero epoch in delta": {Desc: d, Shards: 4, Entries: []DeltaEntry{
			{Shard: 0, Epoch: 0, Sk: rep}}},
	} {
		var buf bytes.Buffer
		if err := EncodeDelta(&buf, f); err == nil {
			t.Errorf("%s: EncodeDelta accepted", name)
		}
	}
}

// corrupt returns data with one mutation applied through f.
func corrupt(data []byte, f func(b []byte)) []byte {
	b := append([]byte(nil), data...)
	f(b)
	return b
}

func TestDecodeDeltaHostile(t *testing.T) {
	d := deltaDesc()
	data := encodeDeltaOK(t, DeltaFrame{Desc: d, Shards: 8, Entries: []DeltaEntry{
		{Shard: 1, Epoch: 3, Sk: mkReplica(t, d, 20)},
		{Shard: 5, Epoch: 9, Sk: mkReplica(t, d, 4)},
	}})
	// The delta-meta section starts right after the 9-byte container
	// header and the desc section; locate it by scanning for the tag.
	metaOff := -1
	for i := 9; i+9 < len(data); i++ {
		if data[i] == secDeltaMeta {
			metaOff = i
			break
		}
	}
	if metaOff < 0 {
		t.Fatal("delta-meta section not found")
	}
	body := metaOff + 9 // section payload: flags, shards u64, count u64, pairs

	cases := map[string][]byte{
		"empty":            {},
		"magic only":       data[:4],
		"truncated header": data[:7],
		"truncated meta":   data[:body+5],
		"truncated state":  data[:len(data)-11],
		"wrong kind": corrupt(data, func(b []byte) {
			b[4] = KindSharded
		}),
		"unknown kind": corrupt(data, func(b []byte) {
			b[4] = 99
		}),
		"unknown flags": corrupt(data, func(b []byte) {
			b[body] = 0x80
		}),
		"zero shards": corrupt(data, func(b []byte) {
			binary.LittleEndian.PutUint64(b[body+1:], 0)
		}),
		"huge shards": corrupt(data, func(b []byte) {
			binary.LittleEndian.PutUint64(b[body+1:], uint64(MaxShards)+1)
		}),
		"count over shards": corrupt(data, func(b []byte) {
			binary.LittleEndian.PutUint64(b[body+9:], 9)
		}),
		"count under sections": corrupt(data, func(b []byte) {
			// count=1 no longer matches the container's section count.
			binary.LittleEndian.PutUint64(b[body+9:], 1)
		}),
		"out-of-range entry shard": corrupt(data, func(b []byte) {
			binary.LittleEndian.PutUint64(b[body+17:], 8)
		}),
		"duplicate entry shard": corrupt(data, func(b []byte) {
			binary.LittleEndian.PutUint64(b[body+17+16:], 1)
		}),
		"zero entry epoch": corrupt(data, func(b []byte) {
			binary.LittleEndian.PutUint64(b[body+17+8:], 0)
		}),
	}
	for name, in := range cases {
		if _, err := DecodeDelta(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: DecodeDelta accepted hostile input", name)
		}
	}
}

func TestDecodeDeltaWrongContainer(t *testing.T) {
	// A sharded checkpoint is not a delta frame, and the error names
	// what the container actually holds.
	d := deltaDesc()
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, d, mkReplica(t, d, 5)); err != nil {
		t.Fatal(err)
	}
	_, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "sketch") {
		t.Fatalf("want container-kind error naming a sketch, got %v", err)
	}
}

func TestDeltaTrailingBytesLeftUnread(t *testing.T) {
	d := deltaDesc()
	data := encodeDeltaOK(t, DeltaFrame{Desc: d, Shards: 2, Entries: []DeltaEntry{
		{Shard: 0, Epoch: 1, Sk: mkReplica(t, d, 3)},
	}})
	r := bytes.NewReader(append(append([]byte(nil), data...), "tail"...))
	if _, err := DecodeDelta(r); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("decode consumed into the trailing bytes: %d left", r.Len())
	}
}
