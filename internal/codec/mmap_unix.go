//go:build unix

package codec

import (
	"fmt"
	"os"
	"syscall"
)

// maxMmapBytes bounds the file size mapFile will map: far above any
// real checkpoint (the codec's shape bounds cap state payloads in the
// hundreds of megabytes), far below anything that could wedge the
// address space.
const maxMmapBytes = 1 << 38

// mapFile maps the whole file at path read-only and returns the bytes
// plus the unmap closer. The descriptor is closed before returning —
// the mapping keeps the pages alive on its own.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrMmap, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrMmap, err)
	}
	size := fi.Size()
	if size <= 0 {
		return nil, nil, fmt.Errorf("%w: %s is empty", ErrMmap, path)
	}
	if size > maxMmapBytes {
		return nil, nil, fmt.Errorf("%w: %s is %d bytes, over the %d-byte mapping bound", ErrMmap, path, size, int64(maxMmapBytes))
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: mapping %s: %w", ErrMmap, path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
