//go:build !unix

package codec

import "fmt"

// mapFile on platforms without memory mapping: always a typed error,
// so OpenMmapSketch degrades to "unsupported" instead of failing to
// build. Restores still work through DecodeSketch on these platforms —
// they just pay the full decode.
func mapFile(path string) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("%w: %s", ErrMmapUnsupported, path)
}
