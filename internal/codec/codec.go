// Package codec is the streaming wire-format subsystem: versioned,
// length-prefixed, section-based encode/decode of every serving
// structure in the repository — single sketches, concurrent.Sharded
// replica sets, sliding-window pane rings, and dyadic range-query
// level stacks — over io.Writer/io.Reader. Algorithm dispatch is
// registry-driven: a decoded descriptor resolves through the one
// catalog in internal/registry, exactly as repro.New does, so a
// checkpoint written by one process reconstructs in another from the
// shared seed (the paper's shared-randomness protocol, §5.5
// footnote 4).
//
// Two format versions exist:
//
//   - v1 ("BAS1") is the legacy single-sketch format: a header naming
//     the algorithm, shape, and seed, then one length-prefixed state
//     payload. It is kept readable forever — payloads written by
//     older builds still load — and writable through EncodeV1 for
//     compatibility tooling, but new code writes v2.
//
//   - v2 ("BAS2") is a container format: the magic, a container kind
//     (sketch, sharded, windowed, range), a section count, then a
//     sequence of sections, each framed as (tag byte, u64 LE length,
//     payload). Composite containers nest: a windowed checkpoint
//     carries its open pane as an embedded sharded container, a range
//     checkpoint carries one embedded sketch container per dyadic
//     level. All integers are little-endian.
//
// Decode paths are hardened against hostile input: every length
// prefix is bounded by what the already-validated descriptor implies
// before it drives an allocation, large payloads are read in bounded
// chunks so a huge claimed length backed by a short stream errors
// after at most one chunk instead of provoking a giant up-front
// allocation, and nested containers are framed by io.LimitReader
// rather than buffered. Garbage errors; it never panics or exhausts
// memory.
package codec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Format magics. The version byte is part of the magic: "BAS1" is the
// legacy single-sketch format, "BAS2" the sectioned container format.
const (
	MagicV1 = "BAS1"
	MagicV2 = "BAS2"
)

// Container kinds (the byte after the v2 magic).
const (
	KindSketch   = 1 // one sketch: desc + state
	KindSharded  = 2 // concurrent.Sharded checkpoint: desc + epochs + per-shard states
	KindWindowed = 3 // window checkpoint: desc + rotation state + panes + nested open pane
	KindRange    = 4 // rangequery checkpoint: dimension + nested per-level sketches
	KindBatch    = 5 // ingest frame: one (idx, delta) update batch (see batch.go)
	KindDelta    = 6 // delta frame: changed-shard sections for one monitoring hop (see delta.go)
)

// Section tags.
const (
	secDesc       = 1  // algorithm name + (n, s, d, seed)
	secState      = 2  // registry Stateful payload (MarshalState bytes)
	secExact      = 3  // dense exact vector: n float64s (composite members only)
	secShardMeta  = 4  // shard count + per-shard epochs
	secWindowMeta = 5  // panes, pane width, open-pane sequence, closed-pane sequences
	secRangeMeta  = 6  // base dimension + level count
	secNested     = 7  // an embedded v2 container
	secPad        = 8  // alignment padding (zero bytes) so mmap'd state starts 8-aligned
	secBatch      = 9  // u32 element count + count × (u64 index, f64 delta)
	secDeltaMeta  = 10 // delta frame: flags + shard count + entry count + (shard, epoch) pairs
)

// maxPad bounds a pad section: padding exists only to 8-align the
// following state payload, so it is always under 8 bytes.
const maxPad = 8

// Decode-side bounds. They reject absurd structure counts before any
// structure-proportional allocation; the per-payload byte bounds come
// from the descriptor via stateBound.
const (
	maxNameLen  = 256
	maxSections = 1 << 17
	// MaxShards bounds the shard count a sharded checkpoint may carry.
	MaxShards = 1 << 16
	// MaxPanes bounds the pane count a windowed checkpoint may carry
	// (matching the facade's WithPanes bound).
	MaxPanes = 1 << 16
	// maxRangeDim matches the facade's MaxRangeDim: the largest base
	// dimension a range checkpoint may declare.
	maxRangeDim = 1 << 26
	// maxCheckpointCells bounds shards × cells-per-replica for a
	// sharded checkpoint: restoring allocates that many counters, so a
	// hostile header must not be able to imply terabytes of replicas.
	maxCheckpointCells = 1 << 28
	// chunk is the incremental-read granularity for large payloads: a
	// hostile length prefix costs at most one chunk of allocation
	// before the short read errors out.
	chunk = 1 << 20
)

// Desc describes how to reconstruct a sketch: the registry constructor
// arguments. Two processes exchanging sketches must agree on it,
// exactly as they must agree on hash functions in the paper. Algo is
// any name the registry resolves — canonical ("l2sr") or the paper's
// legend ("l2-S/R") — so streams written by older builds still load.
type Desc struct {
	Algo string
	N    int
	S    int
	D    int
	Seed int64

	// Hash is the hash family the sketch's rows draw from. The zero
	// value is the pairwise family, which is also what the wire format
	// assumes when a container carries no family byte — so descriptors
	// decoded from any pre-existing checkpoint come back pairwise.
	Hash sketch.HashKind

	// Backend records which counter-plane backend the sketch was
	// reconstructed on. It is in-memory metadata only — never
	// serialized, always the dense zero value on descriptors read from
	// a stream — set by DecodeSketchBackend and OpenMmapSketch so
	// callers can see how a restored sketch is stored.
	Backend sketch.BackendKind
}

// Validate bounds the descriptor fields before they reach a
// constructor — payloads come from the network and must not be able
// to panic or exhaust memory here. The public facade applies the same
// bounds at construction time, so every sketch it builds round-trips.
func (d Desc) Validate() error {
	if d.N < 1 || d.N > 1<<26 {
		return fmt.Errorf("codec: implausible dimension %d", d.N)
	}
	if d.S < 4 || d.S > 1<<22 {
		return fmt.Errorf("codec: implausible row width %d", d.S)
	}
	if d.D < 1 || d.D > 64 {
		return fmt.Errorf("codec: implausible depth %d", d.D)
	}
	if d.S*d.D > 1<<24 {
		return fmt.Errorf("codec: implausible table size %d cells", d.S*d.D)
	}
	if d.Seed < 0 {
		return fmt.Errorf("codec: negative seed")
	}
	if d.Hash > sketch.HashTabulation {
		return fmt.Errorf("codec: unknown hash family %v", d.Hash)
	}
	return nil
}

// Shape returns the registry construction shape the descriptor names.
func (d Desc) Shape() registry.Shape {
	return registry.Shape{N: d.N, S: d.S, D: d.D, Seed: d.Seed, Hash: d.Hash}
}

// lookup resolves the descriptor's algorithm and validates its shape —
// the one gate every decode path passes before any shape-derived
// allocation.
func (d Desc) lookup() (*registry.Entry, error) {
	e, ok := registry.Lookup(d.Algo)
	if !ok {
		return nil, fmt.Errorf("codec: unknown algorithm %q", d.Algo)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// cells returns the counter count one replica of this shape holds —
// the unit of the restore-side allocation bounds.
func (d Desc) cells(e *registry.Entry) uint64 {
	switch e.Name {
	case registry.Exact:
		return uint64(d.N)
	case registry.CounterBraid:
		// The braid is sized by N alone (CB design rule): ≈1.5·N
		// shallow counters plus the deep second layer, each a u64 on
		// the wire.
		l1 := uint64(d.N)*3/2 + 8
		return l1 + l1/4 + 16
	default:
		return uint64(d.S) * uint64(d.D+2)
	}
}

// stateBound is the largest plausible state payload for the shape:
// (D+2)·S cells plus estimator floats for hashed sketches, the dense
// vector for exact. Anything bigger is corrupt, and the bound keeps
// hostile headers from forcing huge allocations.
func stateBound(d Desc, e *registry.Entry) uint64 {
	return 8*d.cells(e) + 4096
}

// section is one framed unit of a v2 container.
type section struct {
	tag     byte
	payload []byte
}

// writeContainer frames secs as a v2 container on w.
func writeContainer(w io.Writer, kind byte, secs []section) error {
	hdr := make([]byte, 0, 9)
	hdr = append(hdr, MagicV2...)
	hdr = append(hdr, kind)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(secs)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, s := range secs {
		var sh [9]byte
		sh[0] = s.tag
		binary.LittleEndian.PutUint64(sh[1:], uint64(len(s.payload)))
		if _, err := w.Write(sh[:]); err != nil {
			return err
		}
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
	}
	return nil
}

// readHeader consumes the magic and, for v2, the kind byte and
// section count. version is 1 or 2.
func readHeader(r io.Reader) (version int, kind byte, nsec uint32, err error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("codec: reading magic: %w", err)
	}
	switch string(m[:]) {
	case MagicV1:
		return 1, 0, 0, nil
	case MagicV2:
		var h [5]byte
		if _, err := io.ReadFull(r, h[:]); err != nil {
			return 0, 0, 0, fmt.Errorf("codec: reading container header: %w", err)
		}
		nsec = binary.LittleEndian.Uint32(h[1:])
		if nsec > maxSections {
			return 0, 0, 0, fmt.Errorf("codec: implausible section count %d", nsec)
		}
		return 2, h[0], nsec, nil
	default:
		return 0, 0, 0, fmt.Errorf("codec: bad magic %q", m[:])
	}
}

// kindName names a container kind for error messages.
func kindName(kind byte) string {
	switch kind {
	case KindSketch:
		return "sketch"
	case KindSharded:
		return "sharded checkpoint"
	case KindWindowed:
		return "windowed checkpoint"
	case KindRange:
		return "range checkpoint"
	case KindBatch:
		return "update batch"
	case KindDelta:
		return "delta frame"
	default:
		return fmt.Sprintf("unknown kind %d", kind)
	}
}

// readSectionHeader consumes one section header and enforces the tag.
func readSectionHeader(r io.Reader, wantTag byte) (uint64, error) {
	var h [9]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, fmt.Errorf("codec: reading section header: %w", err)
	}
	if h[0] != wantTag {
		return 0, fmt.Errorf("codec: section tag %d where %d expected", h[0], wantTag)
	}
	return binary.LittleEndian.Uint64(h[1:]), nil
}

// readPayload reads an n-byte payload, rejecting lengths over max and
// allocating in bounded chunks: a hostile length prefix backed by a
// short stream errors after at most one chunk instead of forcing a
// giant up-front allocation — section lengths are effectively bounded
// by the input actually present, not just by what they claim.
func readPayload(r io.Reader, n, max uint64) ([]byte, error) {
	if n > max {
		return nil, fmt.Errorf("codec: section length %d exceeds shape bound %d", n, max)
	}
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("codec: reading %d-byte section: %w", n, err)
		}
		return buf, nil
	}
	buf := make([]byte, 0, chunk)
	for read := uint64(0); read < n; {
		m := uint64(chunk)
		if rem := n - read; rem < m {
			m = rem
		}
		off := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, fmt.Errorf("codec: reading %d-byte section: %w", n, err)
		}
		read += m
	}
	return buf, nil
}

// descPayload serializes a descriptor section body. The hash-family
// byte is appended only when the family is not pairwise: a pairwise
// sketch's descriptor is byte-identical to what every earlier build
// wrote, and decoders treat the absent byte as pairwise.
func descPayload(d Desc) []byte {
	name := []byte(d.Algo)
	buf := make([]byte, 0, 2+len(name)+33)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	for _, v := range []uint64{uint64(d.N), uint64(d.S), uint64(d.D), uint64(d.Seed)} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	if d.Hash != sketch.HashPairwise {
		buf = append(buf, byte(d.Hash))
	}
	return buf
}

// readDescSection consumes a desc section, resolves the algorithm,
// and validates the shape.
func readDescSection(r io.Reader) (Desc, *registry.Entry, error) {
	n, err := readSectionHeader(r, secDesc)
	if err != nil {
		return Desc{}, nil, err
	}
	payload, err := readPayload(r, n, 2+maxNameLen+33)
	if err != nil {
		return Desc{}, nil, err
	}
	if len(payload) < 2 {
		return Desc{}, nil, fmt.Errorf("codec: descriptor section truncated")
	}
	// Two valid lengths: the classic 32-byte number block, or the same
	// plus one trailing hash-family byte (absent means pairwise).
	nameLen := int(binary.LittleEndian.Uint16(payload))
	if nameLen > maxNameLen || (len(payload) != 2+nameLen+32 && len(payload) != 2+nameLen+33) {
		return Desc{}, nil, fmt.Errorf("codec: malformed descriptor section (%d bytes, name length %d)", len(payload), nameLen)
	}
	nums := payload[2+nameLen:]
	d := Desc{
		Algo: string(payload[2 : 2+nameLen]),
		N:    int(binary.LittleEndian.Uint64(nums)),
		S:    int(binary.LittleEndian.Uint64(nums[8:])),
		D:    int(binary.LittleEndian.Uint64(nums[16:])),
		Seed: int64(binary.LittleEndian.Uint64(nums[24:])),
	}
	if len(nums) == 33 {
		d.Hash = sketch.HashKind(nums[32])
	}
	e, err := d.lookup()
	if err != nil {
		return Desc{}, nil, err
	}
	return d, e, nil
}

// captureState returns the section tag and payload carrying sk's
// state: secState for registry-stateful sketches, secExact (the dense
// vector) for the exact ground truth, which composite checkpoints
// carry so a Sharded/Windowed/Range built over exact is durable too.
func captureState(sk sketch.Sketch) (byte, []byte, error) {
	if ex, ok := sk.(*stream.Exact); ok {
		v := ex.Vector()
		buf := make([]byte, 8*len(v))
		for i, f := range v {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
		}
		return secExact, buf, nil
	}
	st, err := registry.State(sk)
	if err != nil {
		return 0, nil, fmt.Errorf("codec: %T is not serializable (its state is not carried by the wire format)", sk)
	}
	payload, err := st.MarshalState()
	if err != nil {
		return 0, nil, fmt.Errorf("codec: capturing %T state: %w", sk, err)
	}
	return secState, payload, nil
}

// readStateSection consumes a state section for a sketch of the given
// shape, enforcing that the tag matches the algorithm (exact state
// travels as secExact, everything else as secState) and that the
// length sits under the shape bound.
func readStateSection(r io.Reader, d Desc, e *registry.Entry) (byte, []byte, error) {
	var h [9]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, fmt.Errorf("codec: reading state section header: %w", err)
	}
	tag, n := h[0], binary.LittleEndian.Uint64(h[1:])
	exact := e.Name == registry.Exact
	switch {
	case tag == secState && !exact:
	case tag == secExact && exact:
		if n != uint64(8*d.N) {
			return 0, nil, fmt.Errorf("codec: exact state is %d bytes for dimension %d, want %d", n, d.N, 8*d.N)
		}
	default:
		return 0, nil, fmt.Errorf("codec: state section tag %d does not match algorithm %s", tag, e.Name)
	}
	payload, err := readPayload(r, n, stateBound(d, e))
	if err != nil {
		return 0, nil, err
	}
	return tag, payload, nil
}

// restoreState installs a captured state payload into a freshly
// constructed replica of the same shape.
func restoreState(sk sketch.Sketch, tag byte, payload []byte) error {
	if tag == secExact {
		ex, ok := sk.(*stream.Exact)
		if !ok {
			return fmt.Errorf("codec: exact state for non-exact sketch %T", sk)
		}
		v := ex.Vector()
		if len(payload) != 8*len(v) {
			return fmt.Errorf("codec: exact state is %d bytes for dimension %d", len(payload), len(v))
		}
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return nil
	}
	st, err := registry.State(sk)
	if err != nil {
		return fmt.Errorf("codec: %T is not serializable", sk)
	}
	if err := st.UnmarshalState(payload); err != nil {
		return fmt.Errorf("codec: restoring state: %w", err)
	}
	return nil
}

// EncodeSketch writes one sketch as a v2 single-sketch container:
// descriptor section, then state section. Exact is refused — a
// standalone exact "sketch" is the raw vector, which the single-sketch
// format deliberately does not carry (composite checkpoints do).
func EncodeSketch(w io.Writer, desc Desc, sk sketch.Sketch) error {
	tag, payload, err := captureState(sk)
	if err != nil {
		return err
	}
	return encodeSketchSections(w, desc, tag, payload, false)
}

// encodeSketchContainer is EncodeSketch with the exact gate open, for
// composite members (range levels may be exact).
func encodeSketchContainer(w io.Writer, desc Desc, sk sketch.Sketch) error {
	tag, payload, err := captureState(sk)
	if err != nil {
		return err
	}
	return encodeSketchSections(w, desc, tag, payload, true)
}

func encodeSketchSections(w io.Writer, desc Desc, tag byte, payload []byte, allowExact bool) error {
	if tag == secExact && !allowExact {
		return fmt.Errorf("codec: exact sketches are not serializable as standalone containers")
	}
	return writeContainer(w, KindSketch, []section{
		{secDesc, descPayload(desc)},
		{tag, payload},
	})
}

// DecodeSketch reads one sketch written by EncodeSketch (v2) or the
// legacy v1 format, reconstructing it through the algorithm registry
// and restoring its state. Trailing bytes after the container are left
// unread, so containers compose on a stream.
func DecodeSketch(r io.Reader) (sketch.Sketch, Desc, error) {
	version, kind, nsec, err := readHeader(r)
	if err != nil {
		return nil, Desc{}, err
	}
	if version == 1 {
		return decodeV1Body(r)
	}
	if kind != KindSketch {
		return nil, Desc{}, fmt.Errorf("codec: container holds a %s, not a single sketch", kindName(kind))
	}
	return decodeSketchSections(r, nsec, false)
}

// decodeSketchContainer decodes a nested sketch container (exact
// permitted), for composite members.
func decodeSketchContainer(r io.Reader) (sketch.Sketch, Desc, error) {
	version, kind, nsec, err := readHeader(r)
	if err != nil {
		return nil, Desc{}, err
	}
	if version != 2 || kind != KindSketch {
		return nil, Desc{}, fmt.Errorf("codec: embedded container is not a v2 sketch")
	}
	return decodeSketchSections(r, nsec, true)
}

func decodeSketchSections(r io.Reader, nsec uint32, allowExact bool) (sketch.Sketch, Desc, error) {
	return decodeSketchSectionsBackend(r, nsec, allowExact, sketch.Backend{})
}

// decodeSketchSectionsBackend is the body shared by DecodeSketch (zero
// backend = dense) and DecodeSketchBackend: the counter plane of the
// reconstructed sketch lands on be.
func decodeSketchSectionsBackend(r io.Reader, nsec uint32, allowExact bool, be sketch.Backend) (sketch.Sketch, Desc, error) {
	if nsec != 2 && nsec != 3 {
		return nil, Desc{}, fmt.Errorf("codec: sketch container has %d sections, want 2 or 3", nsec)
	}
	desc, e, err := readDescSection(r)
	if err != nil {
		return nil, Desc{}, err
	}
	if e.Name == registry.Exact && !allowExact {
		return nil, Desc{}, fmt.Errorf("codec: exact sketches are not serializable as standalone containers")
	}
	if nsec == 3 {
		// Aligned containers (WriteSketchFile) interleave a pad section
		// so the state payload starts 8-aligned in the file; on a
		// stream decode the padding is just skipped.
		n, err := readSectionHeader(r, secPad)
		if err != nil {
			return nil, Desc{}, err
		}
		if _, err := readPayload(r, n, maxPad); err != nil {
			return nil, Desc{}, err
		}
	}
	tag, payload, err := readStateSection(r, desc, e)
	if err != nil {
		return nil, Desc{}, err
	}
	sk, err := registry.SafeNewBackend(desc.Algo, desc.Shape(), be)
	if err != nil {
		return nil, Desc{}, err
	}
	if err := restoreState(sk, tag, payload); err != nil {
		return nil, Desc{}, err
	}
	desc.Backend = be.Kind
	return sk, desc, nil
}

// EncodeV1 writes the legacy v1 single-sketch format — the layout
// every payload produced by pre-v2 builds uses. It is kept (alongside
// the v1 golden vectors) so compatibility tooling and tests can still
// produce v1 bytes; new code writes v2 via EncodeSketch.
func EncodeV1(w io.Writer, desc Desc, sk sketch.Sketch) error {
	if desc.Hash != sketch.HashPairwise {
		return fmt.Errorf("codec: %w: the v1 container predates hash families and can only carry pairwise sketches, not %v", sketch.ErrHashUnsupported, desc.Hash)
	}
	st, err := registry.State(sk)
	if err != nil {
		return fmt.Errorf("codec: %T is not serializable (its state is not carried by the wire format)", sk)
	}
	if _, err := io.WriteString(w, MagicV1); err != nil {
		return err
	}
	name := []byte(desc.Algo)
	hdr := make([]byte, 4+len(name)+8*4)
	binary.LittleEndian.PutUint32(hdr, uint32(len(name)))
	copy(hdr[4:], name)
	off := 4 + len(name)
	for _, v := range []uint64{uint64(desc.N), uint64(desc.S), uint64(desc.D), uint64(desc.Seed)} {
		binary.LittleEndian.PutUint64(hdr[off:], v)
		off += 8
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	payload, err := st.MarshalState()
	if err != nil {
		return fmt.Errorf("codec: capturing %T state: %w", sk, err)
	}
	var plen [8]byte
	binary.LittleEndian.PutUint64(plen[:], uint64(len(payload)))
	if _, err := w.Write(plen[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// decodeV1Body reads a v1 payload after its magic has been consumed.
func decodeV1Body(r io.Reader) (sketch.Sketch, Desc, error) {
	var desc Desc
	var nameLen [4]byte
	if _, err := io.ReadFull(r, nameLen[:]); err != nil {
		return nil, desc, fmt.Errorf("codec: reading v1 header: %w", err)
	}
	nl := binary.LittleEndian.Uint32(nameLen[:])
	if nl > maxNameLen {
		return nil, desc, fmt.Errorf("codec: implausible algorithm name length %d", nl)
	}
	name := make([]byte, nl)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, desc, fmt.Errorf("codec: reading v1 header: %w", err)
	}
	nums := make([]byte, 8*4)
	if _, err := io.ReadFull(r, nums); err != nil {
		return nil, desc, fmt.Errorf("codec: reading v1 header: %w", err)
	}
	desc = Desc{
		Algo: string(name),
		N:    int(binary.LittleEndian.Uint64(nums)),
		S:    int(binary.LittleEndian.Uint64(nums[8:])),
		D:    int(binary.LittleEndian.Uint64(nums[16:])),
		Seed: int64(binary.LittleEndian.Uint64(nums[24:])),
	}
	e, err := desc.lookup()
	if err != nil {
		return nil, desc, err
	}
	if e.Name == registry.Exact {
		return nil, desc, fmt.Errorf("codec: exact sketches are not serializable as standalone containers")
	}
	var plen [8]byte
	if _, err := io.ReadFull(r, plen[:]); err != nil {
		return nil, desc, fmt.Errorf("codec: reading v1 payload length: %w", err)
	}
	payload, err := readPayload(r, binary.LittleEndian.Uint64(plen[:]), stateBound(desc, e))
	if err != nil {
		return nil, desc, err
	}
	sk, err := registry.SafeNew(desc.Algo, desc.Shape())
	if err != nil {
		return nil, desc, err
	}
	if err := restoreState(sk, secState, payload); err != nil {
		return nil, desc, err
	}
	return sk, desc, nil
}
