package heavyhitter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/workload"
)

// plant returns a biased Gaussian vector with planted outliers at
// known positions.
func plant(n int, seed int64, outliers map[int]float64) []float64 {
	x := workload.Gaussian{Bias: 100, Sigma: 10}.Vector(n, rand.New(rand.NewSource(seed)))
	for i, v := range outliers {
		x[i] = v
	}
	return x
}

func buildL2(x []float64, k int, seed int64) *core.L2SR {
	l2 := core.NewL2SR(core.L2Config{N: len(x), K: k, UseBiasHeap: true},
		rand.New(rand.NewSource(seed)))
	sketch.SketchVector(l2, x)
	return l2
}

func TestScanFindsPlanted(t *testing.T) {
	outliers := map[int]float64{100: 50_000, 2000: -30_000, 7777: 90_000}
	x := plant(20_000, 1, outliers)
	l2 := buildL2(x, 256, 2)
	got := Scan(l2, 10_000)
	found := map[int]bool{}
	for _, d := range got {
		found[d.Index] = true
		if d.Deviation <= 10_000 {
			t.Errorf("reported deviator %d below threshold: %f", d.Index, d.Deviation)
		}
	}
	for i := range outliers {
		if !found[i] {
			t.Errorf("planted outlier %d not found", i)
		}
	}
	// Sorted by decreasing deviation.
	for i := 1; i < len(got); i++ {
		if got[i].Deviation > got[i-1].Deviation {
			t.Fatal("Scan output not sorted")
		}
	}
}

func TestScanNoFalseAlarmOnClean(t *testing.T) {
	x := plant(20_000, 3, nil)
	l2 := buildL2(x, 256, 4)
	if got := Scan(l2, 10_000); len(got) != 0 {
		t.Errorf("clean data produced %d deviators above 10000", len(got))
	}
}

func TestTopKOrderAndContent(t *testing.T) {
	outliers := map[int]float64{5: 100_000, 50: 80_000, 500: 60_000, 5000: 40_000}
	x := plant(20_000, 5, outliers)
	l2 := buildL2(x, 256, 6)
	got := TopK(l2, 4)
	if len(got) != 4 {
		t.Fatalf("TopK returned %d", len(got))
	}
	wantOrder := []int{5, 50, 500, 5000}
	for i, w := range wantOrder {
		if got[i].Index != w {
			t.Errorf("TopK[%d] = %d, want %d", i, got[i].Index, w)
		}
	}
}

func TestTopKDegenerate(t *testing.T) {
	x := plant(2000, 7, nil)
	l2 := buildL2(x, 64, 8)
	if TopK(l2, 0) != nil {
		t.Error("TopK(0) should be nil")
	}
	if got := TopK(l2, 3000); len(got) != 2000 {
		t.Errorf("TopK(k>n) returned %d, want n=2000", len(got))
	}
}

func TestTrackerFindsStreamedOutliers(t *testing.T) {
	const n, k = 10_000, 256
	l2 := core.NewL2SR(core.L2Config{N: n, K: k, UseBiasHeap: true},
		rand.New(rand.NewSource(9)))
	tr := NewTracker(l2, 5_000, 64)
	r := rand.New(rand.NewSource(10))
	hot := map[int]bool{123: true, 4567: true, 9999: true}

	// Background: uniform unit traffic. Hot keys: massive bursts.
	for step := 0; step < 200_000; step++ {
		i := r.Intn(n)
		l2.Update(i, 1)
		tr.Observe(i)
		if step%100 == 0 {
			for h := range hot {
				l2.Update(h, 50)
				tr.Observe(h)
			}
		}
	}
	got := tr.Candidates()
	found := map[int]bool{}
	for _, d := range got {
		found[d.Index] = true
	}
	for h := range hot {
		if !found[h] {
			t.Errorf("hot key %d not tracked (candidates: %d)", h, len(got))
		}
	}
	if tr.Size() > 64 {
		t.Errorf("tracker exceeded maxSize: %d", tr.Size())
	}
}

func TestTrackerEviction(t *testing.T) {
	const n = 1000
	l2 := core.NewL2SR(core.L2Config{N: n, K: 32, UseBiasHeap: true},
		rand.New(rand.NewSource(11)))
	tr := NewTracker(l2, 10, 3)
	// Make five coordinates deviate, in increasing magnitude.
	for j, i := range []int{10, 20, 30, 40, 50} {
		l2.Update(i, float64(100*(j+1)))
		tr.Observe(i)
	}
	if tr.Size() > 3 {
		t.Fatalf("size %d exceeds cap 3", tr.Size())
	}
	got := tr.Candidates()
	// The strongest deviators must have survived eviction.
	if len(got) == 0 || got[0].Index != 50 {
		t.Errorf("strongest deviator lost: %+v", got)
	}
}

func TestTrackerPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracker(nil, 1, 0)
}

// exactSketch adapts a plain vector to BiasedSketch for deterministic
// unit tests of the selection logic.
type exactSketch struct {
	x    []float64
	beta float64
}

func (e exactSketch) Query(i int) float64 { return e.x[i] }
func (e exactSketch) Bias() float64       { return e.beta }
func (e exactSketch) Dim() int            { return len(e.x) }

func TestScanExactTieBreak(t *testing.T) {
	e := exactSketch{x: []float64{0, 5, -5, 9, 0}, beta: 0}
	got := Scan(e, 4)
	want := []int{3, 1, 2} // dev 9, then 5 and 5 (tie → smaller index first)
	if len(got) != 3 {
		t.Fatalf("got %d deviators", len(got))
	}
	for i, w := range want {
		if got[i].Index != w {
			t.Errorf("Scan[%d] = %d, want %d", i, got[i].Index, w)
		}
	}
}

func TestTopKExact(t *testing.T) {
	e := exactSketch{x: []float64{1, -10, 3, 10, 0}, beta: 0}
	got := TopK(e, 2)
	if got[0].Index != 1 && got[0].Index != 3 {
		t.Errorf("TopK[0] = %+v", got[0])
	}
	if math.Abs(got[0].Deviation-10) > 1e-12 || math.Abs(got[1].Deviation-10) > 1e-12 {
		t.Errorf("TopK deviations %f %f, want 10 10", got[0].Deviation, got[1].Deviation)
	}
	// Tie at deviation 10: smaller index first.
	if got[0].Index != 1 || got[1].Index != 3 {
		t.Errorf("tie-break order wrong: %d then %d", got[0].Index, got[1].Index)
	}
}

func BenchmarkScan(b *testing.B) {
	x := plant(100_000, 12, map[int]float64{77: 1e6})
	l2 := buildL2(x, 512, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scan(l2, 1e5)
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	const n = 100_000
	l2 := core.NewL2SR(core.L2Config{N: n, K: 256, UseBiasHeap: true},
		rand.New(rand.NewSource(14)))
	tr := NewTracker(l2, 1e5, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i & (n - 1)
		l2.Update(idx, 1)
		tr.Observe(idx)
	}
}
