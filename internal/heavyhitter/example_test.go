package heavyhitter_test

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/heavyhitter"
)

// Deviation heavy hitters on biased data: every key carries ~1000
// units (which classical φ·‖x‖₁ queries cannot see past), and the two
// planted anomalies — one hot, one dead — are exactly what TopK
// surfaces.
func Example() {
	const n = 100_000
	l2 := core.NewL2SR(core.L2Config{N: n, K: 2048, UseBiasHeap: true},
		rand.New(rand.NewSource(1)))
	r := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		switch i {
		case 777:
			l2.Update(i, 250_000) // hot key
		case 4242:
			// dead key: never updated
		default:
			l2.Update(i, 1000+float64(r.Intn(41)-20))
		}
	}

	for _, d := range heavyhitter.TopK(l2, 2) {
		fmt.Printf("key %d deviates by ≈%.0f\n", d.Index, d.Deviation)
	}
	// Output:
	// key 777 deviates by ≈249014
	// key 4242 deviates by ≈984
}
