package heavyhitter

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestHierarchicalFindsHeavy(t *testing.T) {
	const n = 1 << 14
	hh := NewHierarchical(n, 512, 5, rand.New(rand.NewSource(1)))
	r := rand.New(rand.NewSource(2))
	// Background: 50k scattered unit updates. Heavy: three hot keys.
	for u := 0; u < 50_000; u++ {
		hh.Update(r.Intn(n), 1)
	}
	hot := map[int]float64{100: 20_000, 9999: 12_000, 16000: 8_000}
	for i, v := range hot {
		hh.Update(i, v)
	}
	got := hh.Heavy(0.05) // threshold 0.05·90k = 4500
	found := map[int]bool{}
	for _, d := range got {
		found[d.Index] = true
	}
	for i := range hot {
		if !found[i] {
			t.Errorf("heavy key %d missed", i)
		}
	}
	// Sorted by decreasing estimate; index 100 is heaviest.
	if len(got) == 0 || got[0].Index != 100 {
		t.Errorf("heaviest first expected, got %+v", got)
	}
	// No wild false positives: every reported estimate near threshold+.
	for _, d := range got {
		if d.Estimate < 0.04*hh.Mass() {
			t.Errorf("false positive far below threshold: %+v", d)
		}
	}
}

func TestHierarchicalNoHeavy(t *testing.T) {
	const n = 4096
	hh := NewHierarchical(n, 256, 5, rand.New(rand.NewSource(3)))
	r := rand.New(rand.NewSource(4))
	for u := 0; u < 20_000; u++ {
		hh.Update(r.Intn(n), 1) // perfectly flat
	}
	if got := hh.Heavy(0.05); len(got) != 0 {
		t.Errorf("flat stream produced %d heavy hitters", len(got))
	}
}

func TestHierarchicalPanics(t *testing.T) {
	hh := NewHierarchical(16, 8, 2, rand.New(rand.NewSource(5)))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative update should panic")
			}
		}()
		hh.Update(0, -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("phi out of range should panic")
			}
		}()
		hh.Heavy(0)
	}()
}

func TestHierarchicalEmpty(t *testing.T) {
	hh := NewHierarchical(16, 8, 2, rand.New(rand.NewSource(6)))
	if got := hh.Heavy(0.5); got != nil {
		t.Errorf("empty structure returned %v", got)
	}
	if hh.Mass() != 0 {
		t.Error("empty mass should be 0")
	}
	if hh.Words() <= 0 {
		t.Error("Words should be positive")
	}
}

// The paper's core observation, in heavy-hitter form: on biased data
// the classical φ·‖x‖₁ query is blind — either everything or nothing
// crosses the threshold — while deviation detection pinpoints the
// anomalies.
func TestHierarchicalBiasBlindness(t *testing.T) {
	const n = 1 << 12
	r := rand.New(rand.NewSource(7))
	x := workload.Gaussian{Bias: 100, Sigma: 5}.Vector(n, r)
	anomaly := 777
	x[anomaly] = 450 // 4.5× the crowd — a glaring outlier

	hh := NewHierarchical(n, 512, 5, rand.New(rand.NewSource(8)))
	for i, v := range x {
		hh.Update(i, v)
	}
	// Total mass ≈ 100n; the anomaly is 450/(100n) ≈ 0.1% of mass:
	// any φ small enough to catch it catches everything.
	atAnomaly := hh.Heavy(400.0 / hh.Mass())
	if len(atAnomaly) < n/2 {
		t.Errorf("expected the classical query to drown: got %d results", len(atAnomaly))
	}
	// A φ above the crowd level returns nothing (the anomaly is below
	// any such threshold too).
	if got := hh.Heavy(0.01); len(got) != 0 {
		t.Errorf("high threshold should return nothing, got %d", len(got))
	}
}

func BenchmarkHierarchicalHeavy(b *testing.B) {
	const n = 1 << 16
	hh := NewHierarchical(n, 1024, 5, rand.New(rand.NewSource(9)))
	r := rand.New(rand.NewSource(10))
	zipf := rand.NewZipf(r, 1.2, 1, n-1)
	for u := 0; u < 200_000; u++ {
		hh.Update(int(zipf.Uint64()), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.Heavy(0.01)
	}
}
