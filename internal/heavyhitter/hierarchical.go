package heavyhitter

import (
	"math/rand"
	"sort"

	"repro/internal/rangequery"
	"repro/internal/sketch"
)

// This file implements the classical hierarchical heavy hitters query
// (the "frequent elements" application of §1 in its textbook form):
// find every coordinate with x_i ≥ φ·‖x‖₁ in O(HH·log n) point
// queries by descending a dyadic tree of sketches, instead of the O(n)
// scan. It pairs naturally with the deviation-based detection in this
// package: Hierarchical finds mass concentration, Scan/TopK find
// departures from the crowd. On biased data the classical query is
// uninformative (every dyadic block carries bias mass — the paper's
// core observation), which TestHierarchicalBiasBlindness demonstrates.
type Hierarchical struct {
	rq   *rangequery.Sketch
	mass float64 // running ‖x‖₁ for non-negative streams
}

// NewHierarchical builds a dyadic stack of Count-Min sketches (rows s,
// depth d per level) over dimension n. Count-Min's one-sided error is
// what makes the tree descent sound: a block estimate below the
// threshold can never hide a heavy descendant.
func NewHierarchical(n, s, d int, r *rand.Rand) *Hierarchical {
	factory := func(_, size int, rr *rand.Rand) rangequery.PointSketch {
		cm, err := sketch.NewCountMin(sketch.Config{N: size, Rows: s, Depth: d}, rr)
		if err != nil {
			panic(err)
		}
		return cm
	}
	return &Hierarchical{rq: rangequery.New(n, factory, r)}
}

// Update applies x[i] += delta. Deltas must be non-negative for the
// descent to be sound (Count-Min semantics).
func (h *Hierarchical) Update(i int, delta float64) {
	if delta < 0 {
		panic("heavyhitter: hierarchical heavy hitters require non-negative updates")
	}
	h.rq.Update(i, delta)
	h.mass += delta
}

// Mass returns the running ‖x‖₁.
func (h *Hierarchical) Mass() float64 { return h.mass }

// Heavy returns every coordinate whose estimated count is at least
// phi·‖x‖₁ (0 < phi ≤ 1), sorted by decreasing estimate. Count-Min
// overestimates, so the result may include false positives slightly
// below the threshold, but never misses a true heavy hitter.
func (h *Hierarchical) Heavy(phi float64) []Deviator {
	if phi <= 0 || phi > 1 {
		panic("heavyhitter: phi must be in (0,1]")
	}
	threshold := phi * h.mass
	if threshold <= 0 {
		return nil
	}
	var out []Deviator
	// Descend from the top level: a dyadic block whose estimated sum
	// is below the threshold cannot contain a heavy coordinate.
	var walk func(level, idx int)
	walk = func(level, idx int) {
		lo := idx << uint(level)
		hi := (idx + 1) << uint(level)
		if lo >= h.rq.Dim() {
			return
		}
		if hi > h.rq.Dim() {
			hi = h.rq.Dim()
		}
		est := h.rq.RangeSum(lo, hi)
		if est < threshold {
			return
		}
		if level == 0 {
			out = append(out, Deviator{Index: lo, Estimate: est, Deviation: est})
			return
		}
		walk(level-1, 2*idx)
		walk(level-1, 2*idx+1)
	}
	top := h.rq.Levels() - 1
	walk(top, 0)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Words returns the total sketch size.
func (h *Hierarchical) Words() int { return h.rq.Words() + 1 }
