// Package heavyhitter finds the coordinates that deviate most from the
// data's bias — the "frequent elements" application of §1 restated for
// biased vectors, and the distributed outlier-detection use case of
// Yan et al. [31] that motivated BOMP. On biased data the classical
// notion ("largest coordinates") is useless because every coordinate
// carries the bias mass; the meaningful heavy hitters are the
// coordinates far from β.
package heavyhitter

import (
	"container/heap"
	"math"
	"sort"
)

// BiasedSketch is the query surface detection needs; both core.L1SR
// and core.L2SR satisfy it.
type BiasedSketch interface {
	Query(i int) float64
	Bias() float64
	Dim() int
}

// Deviator is one reported outlier.
type Deviator struct {
	Index     int
	Estimate  float64 // x̂_i
	Deviation float64 // |x̂_i − β̂|
}

// batchQuerier matches sketches with a native batched query path — the
// sketch.BatchQuerier capability, restated structurally so this
// package keeps zero sketch dependencies. Scan and TopK drive it in
// chunks: the full-vector recovery they perform is exactly the
// read-heavy shape the row-major batch path accelerates, and QueryBatch
// is bit-identical to the Query loop, so results never change.
type batchQuerier interface {
	QueryBatch(idx []int, out []float64)
}

// scanChunk is the batch size of the chunked full-vector scans: large
// enough to amortize per-row hash-coefficient loads, small enough that
// the per-chunk scratch stays cache-resident.
const scanChunk = 1024

// forEachEstimate calls visit(i, x̂_i) for every coordinate, through
// the sketch's batched query path when it has one.
func forEachEstimate(s BiasedSketch, visit func(i int, est float64)) {
	n := s.Dim()
	bq, ok := s.(batchQuerier)
	if !ok {
		for i := 0; i < n; i++ {
			visit(i, s.Query(i))
		}
		return
	}
	idx := make([]int, scanChunk)
	out := make([]float64, scanChunk)
	for base := 0; base < n; base += scanChunk {
		m := scanChunk
		if rem := n - base; rem < m {
			m = rem
		}
		for j := 0; j < m; j++ {
			idx[j] = base + j
		}
		bq.QueryBatch(idx[:m], out[:m])
		for j := 0; j < m; j++ {
			visit(base+j, out[j])
		}
	}
}

// Scan queries every coordinate and returns those whose estimated
// deviation from the bias exceeds threshold, sorted by decreasing
// deviation (ties by index). O(n) point queries, batched when the
// sketch supports it.
func Scan(s BiasedSketch, threshold float64) []Deviator {
	beta := s.Bias()
	var out []Deviator
	forEachEstimate(s, func(i int, est float64) {
		if dev := math.Abs(est - beta); dev > threshold {
			out = append(out, Deviator{Index: i, Estimate: est, Deviation: dev})
		}
	})
	sortDeviators(out)
	return out
}

// TopK returns the k coordinates with the largest estimated deviation
// from the bias, sorted by decreasing deviation. O(n) point queries —
// batched when the sketch supports it — with an O(k)-size selection
// heap.
func TopK(s BiasedSketch, k int) []Deviator {
	if k <= 0 {
		return nil
	}
	beta := s.Bias()
	h := &devMinHeap{}
	forEachEstimate(s, func(i int, est float64) {
		d := Deviator{Index: i, Estimate: est, Deviation: math.Abs(est - beta)}
		if h.Len() < k {
			heap.Push(h, d)
		} else if less((*h)[0], d) {
			(*h)[0] = d
			heap.Fix(h, 0)
		}
	})
	out := make([]Deviator, h.Len())
	copy(out, *h)
	sortDeviators(out)
	return out
}

// less orders deviators ascending: smaller deviation first, larger
// index breaking ties (so sort-descending puts smaller index first).
func less(a, b Deviator) bool {
	if a.Deviation != b.Deviation {
		return a.Deviation < b.Deviation
	}
	return a.Index > b.Index
}

func sortDeviators(ds []Deviator) {
	sort.Slice(ds, func(i, j int) bool { return less(ds[j], ds[i]) })
}

type devMinHeap []Deviator

func (h devMinHeap) Len() int            { return len(h) }
func (h devMinHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h devMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *devMinHeap) Push(x interface{}) { *h = append(*h, x.(Deviator)) }
func (h *devMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Tracker maintains an online candidate set of deviating coordinates
// during an insert-only stream, so heavy hitters are available at any
// time without an O(n) scan. After each sketch update, call Observe
// with the updated coordinate; if its current estimated deviation
// exceeds the threshold it becomes a candidate. Candidates are
// re-verified (re-queried against the current bias) when read.
//
// The insert-only assumption matters: a coordinate can only become a
// deviator through its own updates (upward) — a coordinate that is
// never updated stays at zero, which is itself a deviation when the
// bias is large, so Tracker also accepts an explicit low-side scan at
// read time via VerifyScanLow.
type Tracker struct {
	sk        BiasedSketch
	threshold float64
	maxSize   int
	candidate map[int]bool
}

// NewTracker creates a tracker over sk reporting deviations above
// threshold, holding at most maxSize candidates (oldest-evicted... the
// smallest current deviation is evicted when full).
func NewTracker(sk BiasedSketch, threshold float64, maxSize int) *Tracker {
	if maxSize <= 0 {
		panic("heavyhitter: maxSize must be positive")
	}
	return &Tracker{
		sk:        sk,
		threshold: threshold,
		maxSize:   maxSize,
		candidate: make(map[int]bool),
	}
}

// Observe examines coordinate i after an update to it.
func (t *Tracker) Observe(i int) {
	if t.candidate[i] {
		return
	}
	if math.Abs(t.sk.Query(i)-t.sk.Bias()) > t.threshold {
		if len(t.candidate) >= t.maxSize {
			t.evictWeakest()
		}
		t.candidate[i] = true
	}
}

// evictWeakest removes the candidate with the smallest current
// deviation.
func (t *Tracker) evictWeakest() {
	beta := t.sk.Bias()
	worst, worstDev := -1, math.Inf(1)
	for i := range t.candidate {
		if dev := math.Abs(t.sk.Query(i) - beta); dev < worstDev {
			worst, worstDev = i, dev
		}
	}
	if worst >= 0 {
		delete(t.candidate, worst)
	}
}

// Candidates re-verifies every tracked coordinate against the current
// bias and returns those still above threshold, sorted by decreasing
// deviation.
func (t *Tracker) Candidates() []Deviator {
	beta := t.sk.Bias()
	var out []Deviator
	for i := range t.candidate {
		est := t.sk.Query(i)
		if dev := math.Abs(est - beta); dev > t.threshold {
			out = append(out, Deviator{Index: i, Estimate: est, Deviation: dev})
		}
	}
	sortDeviators(out)
	return out
}

// Size returns the current candidate-set size.
func (t *Tracker) Size() int { return len(t.candidate) }
