// Package counterbraids implements Counter Braids (Lu, Montanari,
// Prabhakar, Dharmapurikar, Kabbani — SIGMETRICS 2008), the related
// sketch §2 of the paper contrasts against: a bit-efficient per-flow
// counter structure whose counters are "braided" — shallow first-layer
// counters whose overflow bits are shared in a smaller second layer —
// and whose decoding is an iterative message-passing (min-sum)
// algorithm run layer by layer.
//
// The paper's two criticisms are directly visible in this API:
// decoding reconstructs the whole vector at once (there is no Query
// method), and the structure needs the stream to be insert-only and
// the flow universe enumerable at decode time. In exchange, when the
// load is below the decoding threshold the reconstruction is *exact*
// using a fraction of the bits exact counters would need.
package counterbraids

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/hashing"
)

// Config shapes a two-layer braid.
type Config struct {
	N int // flow universe size (vector dimension)

	// Layer1 is the number of first-layer counters (≈ 1.5·N for
	// exact decoding at d=3 per the CB threshold).
	Layer1 int
	// Layer1Bits is the width of a first-layer counter; overflow
	// beyond 2^Layer1Bits−1 is carried into layer 2. Size it so that
	// overflow is rare: the layer-2 decode needs the count of
	// overflowing layer-1 counters to stay below ≈ Layer2/1.3.
	Layer1Bits int
	// Layer2 is the number of second-layer (deep) counters. Sizing
	// rule: the layer-2 min-sum needs either the dense threshold
	// (Layer2 ≳ 1.3·Layer1, when most layer-1 counters overflow) or
	// enough empty layer-2 counters to prove zeros (Layer2 ≳ 5·D·F
	// where F is the number of overflowing layer-1 counters).
	Layer2 int
	// D is the number of layer-1 counters per flow and of layer-2
	// counters per layer-1 counter (the braid degree). 3 is standard.
	D int
}

func (c Config) withDefaults() Config {
	if c.Layer1 == 0 {
		c.Layer1 = c.N*3/2 + 8
	}
	if c.Layer1Bits == 0 {
		// Deep enough that layer-1 overflow is the exception: the
		// layer-2 stage can only decode when the number of
		// *overflowing* layer-1 counters is below its own min-sum
		// threshold (≈ Layer2/1.3). This is the CB design rule —
		// layer 1 absorbs the bulk of the traffic, layer 2 only the
		// rare carries.
		c.Layer1Bits = 12
	}
	if c.Layer2 == 0 {
		c.Layer2 = c.Layer1/4 + 8
	}
	if c.D == 0 {
		c.D = 3
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("counterbraids: N must be positive, got %d", c.N)
	}
	if c.Layer1 <= 0 || c.Layer2 <= 0 {
		return fmt.Errorf("counterbraids: layer sizes must be positive")
	}
	if c.Layer1Bits < 1 || c.Layer1Bits > 62 {
		return fmt.Errorf("counterbraids: Layer1Bits %d out of [1,62]", c.Layer1Bits)
	}
	if c.D < 2 || c.D > 8 {
		return fmt.Errorf("counterbraids: braid degree D must be in [2,8], got %d", c.D)
	}
	return nil
}

// Braid is a two-layer counter braid. Insert-only.
type Braid struct {
	cfg  Config
	cap1 uint64 // 2^Layer1Bits − 1, the layer-1 counter ceiling

	h1 hashing.Family // flows -> layer-1 counters, D members
	h2 hashing.Family // layer-1 counters -> layer-2 counters, D members

	c1 []uint64 // layer-1 stored values (mod 2^bits)
	c2 []uint64 // layer-2 counters (deep)
}

// New creates a braid, drawing hash functions from r.
func New(cfg Config, r *rand.Rand) *Braid {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// Validate has ensured both layer sizes are positive, so the family
	// constructors cannot fail on range.
	h1, err := hashing.NewFamily(r, cfg.D, cfg.Layer1)
	if err != nil {
		panic(err)
	}
	h2, err := hashing.NewFamily(r, cfg.D, cfg.Layer2)
	if err != nil {
		panic(err)
	}
	return &Braid{
		cfg:  cfg,
		cap1: (1 << uint(cfg.Layer1Bits)) - 1,
		h1:   h1,
		h2:   h2,
		c1:   make([]uint64, cfg.Layer1),
		c2:   make([]uint64, cfg.Layer2),
	}
}

// Update adds delta (a non-negative integer) to flow i: each of the
// flow's D layer-1 counters advances, carrying overflow into its D
// layer-2 counters.
func (b *Braid) Update(i int, delta float64) {
	if i < 0 || i >= b.cfg.N {
		panic(fmt.Sprintf("counterbraids: flow %d out of range [0,%d)", i, b.cfg.N))
	}
	d := uint64(delta)
	if delta < 0 || float64(d) != delta {
		panic("counterbraids: updates must be non-negative integers (insert-only)")
	}
	for t := 0; t < b.cfg.D; t++ {
		j := b.h1.H[t].Hash(uint64(i))
		sum := b.c1[j] + d
		b.c1[j] = sum & b.cap1
		if carry := sum >> uint(b.cfg.Layer1Bits); carry > 0 {
			for u := 0; u < b.cfg.D; u++ {
				b.c2[b.h2.H[u].Hash(uint64(j))] += carry
			}
		}
	}
}

// Bits returns the storage cost in bits: shallow layer-1 counters plus
// 64-bit layer-2 counters. (This is the quantity Counter Braids
// optimizes; compare with 64·N for exact per-flow counters.)
func (b *Braid) Bits() int {
	return b.cfg.Layer1*b.cfg.Layer1Bits + 64*b.cfg.Layer2
}

// Dim returns the flow universe size.
func (b *Braid) Dim() int { return b.cfg.N }

// ErrNoConverge is reported when message passing does not settle; the
// braid was loaded beyond its decoding threshold.
var ErrNoConverge = errors.New("counterbraids: decoding did not converge (braid overloaded)")

// Decode reconstructs all N flow counts, layer by layer as the CB
// paper prescribes: first recover each layer-1 counter's overflow
// count from layer 2 by message passing, rebuild the exact layer-1
// values, then recover the flows from layer 1 by message passing.
// maxIter bounds the min-sum iterations per layer (32 is plenty below
// threshold).
func (b *Braid) Decode(maxIter int) ([]float64, error) {
	// Stage 1: unknowns = per-layer-1-counter overflow carries;
	// "counters" = layer 2.
	memb2 := make([][]int, b.cfg.Layer1)
	for j := 0; j < b.cfg.Layer1; j++ {
		m := make([]int, b.cfg.D)
		for u := 0; u < b.cfg.D; u++ {
			m[u] = b.h2.H[u].Hash(uint64(j))
		}
		memb2[j] = m
	}
	over, err := minSum(memb2, b.c2, b.cfg.Layer2, maxIter)
	if err != nil {
		return nil, fmt.Errorf("layer 2: %w", err)
	}

	// Rebuild full layer-1 values.
	v1 := make([]uint64, b.cfg.Layer1)
	for j := range v1 {
		v1[j] = b.c1[j] + over[j]<<uint(b.cfg.Layer1Bits)
	}

	// Stage 2: unknowns = flows; counters = reconstructed layer 1.
	memb1 := make([][]int, b.cfg.N)
	for f := 0; f < b.cfg.N; f++ {
		m := make([]int, b.cfg.D)
		for t := 0; t < b.cfg.D; t++ {
			m[t] = b.h1.H[t].Hash(uint64(f))
		}
		memb1[f] = m
	}
	x, err := minSum(memb1, v1, b.cfg.Layer1, maxIter)
	if err != nil {
		return nil, fmt.Errorf("layer 1: %w", err)
	}
	out := make([]float64, b.cfg.N)
	for f := range x {
		out[f] = float64(x[f])
	}
	return out, nil
}

// minSum is the Counter Braids message-passing decoder: unknowns
// (flows) each belong to len(memb[f]) counters; counter j's value is
// the sum of its members. Iterations alternate between upper-bound
// and lower-bound messages:
//
//	ν_{j→f} = v_j − Σ_{f'∈j, f'≠f} μ_{f'→j}
//	μ_{f→j} = clamp( min / max over j'≠j of ν_{j'→f} )
//
// starting from μ = 0 (a valid lower bound). Below the decoding
// threshold the bounds meet and the reconstruction is exact.
func minSum(memb [][]int, v []uint64, counters, maxIter int) ([]uint64, error) {
	n := len(memb)
	d := 0
	if n > 0 {
		d = len(memb[0])
	}
	// Messages flow→counter, stored flat per (flow, slot).
	mu := make([]int64, n*d)
	nextMu := make([]int64, n*d)
	// Counter aggregates: Σ incoming μ per counter.
	sum := make([]int64, counters)
	est := make([]uint64, n)

	vi := make([]int64, len(v))
	for j, val := range v {
		if val > math.MaxInt64/2 {
			return nil, fmt.Errorf("counterbraids: counter value %d too large", val)
		}
		vi[j] = int64(val)
	}

	converged := false
	for iter := 1; iter <= maxIter; iter++ {
		upper := iter%2 == 1 // odd iterations produce upper bounds
		for j := range sum {
			sum[j] = 0
		}
		for f := 0; f < n; f++ {
			for s, j := range memb[f] {
				sum[j] += mu[f*d+s]
			}
		}
		changed := false
		for f := 0; f < n; f++ {
			// ν_{j→f} for each membership.
			var nu [8]int64 // d ≤ 8 in any sane configuration
			for s, j := range memb[f] {
				nu[s] = vi[j] - (sum[j] - mu[f*d+s])
			}
			for s := range memb[f] {
				// Combine over the other memberships.
				var agg int64
				first := true
				for s2 := range memb[f] {
					if s2 == s {
						continue
					}
					if first {
						agg = nu[s2]
						first = false
					} else if upper {
						if nu[s2] < agg {
							agg = nu[s2]
						}
					} else {
						if nu[s2] > agg {
							agg = nu[s2]
						}
					}
				}
				if agg < 0 {
					agg = 0
				}
				if nextMu[f*d+s] = agg; agg != mu[f*d+s] {
					changed = true
				}
			}
			// Running estimate: min over all memberships of ν (an
			// upper bound on the flow).
			best := nu[0]
			for s := 1; s < len(memb[f]); s++ {
				if nu[s] < best {
					best = nu[s]
				}
			}
			if best < 0 {
				best = 0
			}
			est[f] = uint64(best)
		}
		mu, nextMu = nextMu, mu
		if !changed && iter > 2 {
			converged = true
			break
		}
	}
	if !converged {
		// Verify the fixed point anyway: if the estimates satisfy all
		// counter equations exactly, accept them.
		check := make([]int64, counters)
		for f := 0; f < n; f++ {
			for _, j := range memb[f] {
				check[j] += int64(est[f])
			}
		}
		for j := range check {
			if check[j] != vi[j] {
				return nil, ErrNoConverge
			}
		}
	}
	return est, nil
}
