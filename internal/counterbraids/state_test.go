package counterbraids

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// feedBraid drives a deterministic insert-only stream and returns the
// reference vector.
func feedBraid(b *Braid, n int, seed int64) []float64 {
	want := make([]float64, n)
	r := rand.New(rand.NewSource(seed))
	for u := 0; u < 4*n; u++ {
		i, d := r.Intn(n), float64(1+r.Intn(5))
		b.Update(i, d)
		want[i] += d
	}
	return want
}

func TestSameShape(t *testing.T) {
	mk := func(n int, seed int64) *Braid {
		return New(Config{N: n}, rand.New(rand.NewSource(seed)))
	}
	a := mk(200, 1)
	if !a.SameShape(mk(200, 1)) {
		t.Error("identical construction should share shape")
	}
	if a.SameShape(mk(201, 1)) {
		t.Error("different n should not share shape")
	}
	if a.SameShape(mk(200, 2)) {
		t.Error("different hash seeds should not share shape")
	}
}

// Merging two braids must be bit-identical to one braid that ingested
// both streams — including layer-1 overflow carries re-applied at
// merge time.
func TestMergeFromMatchesConcatenatedStream(t *testing.T) {
	const n = 150
	mk := func() *Braid { return New(Config{N: n}, rand.New(rand.NewSource(3))) }
	a, b, both := mk(), mk(), mk()
	wa := feedBraid(a, n, 10)
	wb := feedBraid(b, n, 11)
	feedBraid(both, n, 10)
	feedBraid(both, n, 11)

	if err := a.MergeFrom(b); err != nil {
		t.Fatalf("MergeFrom: %v", err)
	}
	// Bit-identical counter state, not just equal decodes.
	am, bm := a.Marshal(), both.Marshal()
	if len(am) != len(bm) {
		t.Fatalf("state sizes differ: %d vs %d", len(am), len(bm))
	}
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("merged state differs from concatenated-stream state at byte %d", i)
		}
	}
	x, err := a.Decode(32)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i := range x {
		if x[i] != wa[i]+wb[i] {
			t.Fatalf("coordinate %d: decoded %v, want %v", i, x[i], wa[i]+wb[i])
		}
	}

	if err := a.MergeFrom(New(Config{N: n}, rand.New(rand.NewSource(99)))); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("seed mismatch: %v, want ErrShapeMismatch", err)
	}
}

// Layer-1 overflow carries: large per-flow totals overflow the shallow
// counters, and the merge must re-apply the carry rule rather than add
// residues blindly.
func TestMergeFromWithOverflowingCounters(t *testing.T) {
	const n = 40
	mk := func() *Braid { return New(Config{N: n}, rand.New(rand.NewSource(5))) }
	a, b, both := mk(), mk(), mk()
	big := float64(uint64(1) << 13) // past the 12-bit layer-1 ceiling
	for i := 0; i < n; i++ {
		a.Update(i, big)
		b.Update(i, big)
		both.Update(i, big)
		both.Update(i, big)
	}
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	am, bm := a.Marshal(), both.Marshal()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("overflow merge state differs at byte %d", i)
		}
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	const n = 120
	a := New(Config{N: n}, rand.New(rand.NewSource(7)))
	want := feedBraid(a, n, 8)

	blob := a.Marshal()
	back := New(Config{N: n}, rand.New(rand.NewSource(7)))
	if err := back.Unmarshal(blob); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	x, err := back.Decode(32)
	if err != nil {
		t.Fatalf("Decode after restore: %v", err)
	}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("coordinate %d: restored %v, want %v", i, x[i], want[i])
		}
	}

	// Reset returns the braid to the empty state.
	back.Reset()
	zero, err := back.Decode(32)
	if err != nil {
		t.Fatalf("Decode after Reset: %v", err)
	}
	for i, v := range zero {
		if v != 0 {
			t.Fatalf("coordinate %d nonzero after Reset: %v", i, v)
		}
	}
	// And a reset braid can restore again.
	if err := back.Unmarshal(blob); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejections(t *testing.T) {
	const n = 60
	b := New(Config{N: n}, rand.New(rand.NewSource(9)))
	valid := b.Marshal()

	short := valid[:8]
	wrongLayer := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(wrongLayer, binary.LittleEndian.Uint64(wrongLayer)+1)
	truncated := valid[:len(valid)-8]
	ceiling := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(ceiling[16:], 1<<20) // over the 12-bit layer-1 cap

	for name, buf := range map[string][]byte{
		"short header":   short,
		"layer mismatch": wrongLayer,
		"truncated body": truncated,
		"over ceiling":   ceiling,
	} {
		if err := b.Unmarshal(buf); !errors.Is(err, ErrBadState) {
			t.Errorf("%s: err = %v, want ErrBadState", name, err)
		}
	}
	if err := b.Unmarshal(valid); err != nil {
		t.Errorf("control: valid state rejected: %v", err)
	}
}
