package counterbraids

import (
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 0},
		{N: 10, Layer1: -1, Layer2: 4, Layer1Bits: 8, D: 3},
		{N: 10, Layer1: 16, Layer2: 4, Layer1Bits: 0, D: 3},
		{N: 10, Layer1: 16, Layer2: 4, Layer1Bits: 63, D: 3},
		{N: 10, Layer1: 16, Layer2: 4, Layer1Bits: 8, D: 1},
		{N: 10, Layer1: 16, Layer2: 4, Layer1Bits: 8, D: 9},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
	good := Config{N: 10}.withDefaults()
	if err := good.Validate(); err != nil {
		t.Errorf("defaulted config invalid: %v", err)
	}
}

func TestUpdatePanics(t *testing.T) {
	b := New(Config{N: 10}, rand.New(rand.NewSource(1)))
	for name, fn := range map[string]func(){
		"out of range": func() { b.Update(10, 1) },
		"negative":     func() { b.Update(0, -1) },
		"fractional":   func() { b.Update(0, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// Below threshold the decoding must be EXACT — the defining property
// of Counter Braids (and why the paper can't fault its accuracy, only
// its cost and rigidity).
func TestExactDecodeModerateLoad(t *testing.T) {
	const n = 2000
	r := rand.New(rand.NewSource(2))
	// ~40 elephants → ≈120 overflowing layer-1 counters; layer 2 needs
	// enough empty counters to prove the other ~2900 overflows zero.
	b := New(Config{N: n, Layer2: 1600}, rand.New(rand.NewSource(3)))
	x := make([]float64, n)
	for i := range x {
		// Mostly small flows with an elephant tail: a minority of
		// layer-1 counters overflow the 12-bit default and exercise
		// the braided layer 2.
		x[i] = float64(r.Intn(1000))
		if r.Intn(50) == 0 {
			x[i] += float64(5000 + r.Intn(20000))
		}
		if x[i] > 0 {
			b.Update(i, x[i])
		}
	}
	got, err := b.Decode(64)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if e := vecmath.MaxAbsErr(x, got); e != 0 {
		t.Fatalf("decode not exact: max err %f", e)
	}
}

// Incremental streams (unit updates) must braid overflow correctly.
func TestExactDecodeUnitStream(t *testing.T) {
	const n = 500
	r := rand.New(rand.NewSource(4))
	// 4-bit layer-1 counters overflow constantly, so layer 2 carries
	// nearly all the mass and must itself be above the min-sum
	// threshold for ~all of layer 1 (dense unknowns): 1.6× Layer1.
	b := New(Config{N: n, Layer1: 1000, Layer1Bits: 4, Layer2: 2500}, rand.New(rand.NewSource(5)))
	x := make([]float64, n)
	for step := 0; step < 30000; step++ {
		i := r.Intn(n)
		x[i]++
		b.Update(i, 1)
	}
	got, err := b.Decode(64)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if e := vecmath.MaxAbsErr(x, got); e != 0 {
		t.Fatalf("decode not exact: max err %f", e)
	}
}

// Overloading the braid (far fewer counters than flows) must be
// reported, not silently mis-decoded.
func TestOverloadReported(t *testing.T) {
	const n = 2000
	r := rand.New(rand.NewSource(6))
	b := New(Config{N: n, Layer1: n / 4, Layer2: n / 32}, rand.New(rand.NewSource(7)))
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(1 + r.Intn(100))
		b.Update(i, x[i])
	}
	if got, err := b.Decode(32); err == nil {
		// A lucky exact fixed point is acceptable; anything else is a
		// silent mis-decode.
		if e := vecmath.MaxAbsErr(x, got); e != 0 {
			t.Fatalf("overloaded braid returned wrong answer (max err %f) without error", e)
		}
	}
}

// The bit budget must be far below exact 64-bit counters.
func TestBitsBudget(t *testing.T) {
	const n = 10000
	b := New(Config{N: n}, rand.New(rand.NewSource(8)))
	exact := 64 * n
	if b.Bits() >= exact*2/3 {
		t.Errorf("braid uses %d bits, want below 2/3 of exact %d", b.Bits(), exact)
	}
	if b.Dim() != n {
		t.Errorf("Dim = %d", b.Dim())
	}
}

// Zero traffic decodes to the zero vector.
func TestDecodeEmpty(t *testing.T) {
	b := New(Config{N: 100}, rand.New(rand.NewSource(9)))
	got, err := b.Decode(8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("flow %d decoded to %f on empty braid", i, v)
		}
	}
}

// Sparse traffic (most flows zero) is the easiest regime; must be
// exact even with a small braid.
func TestSparseTrafficSmallBraid(t *testing.T) {
	const n = 5000
	r := rand.New(rand.NewSource(10))
	// 100 elephants → ≈300 overflowing layer-1 counters; both layers
	// need headroom above their min-sum thresholds.
	b := New(Config{N: n, Layer1: 1000, Layer2: 700}, rand.New(rand.NewSource(11)))
	x := make([]float64, n)
	for j := 0; j < 100; j++ {
		i := r.Intn(n)
		x[i] = float64(1 + r.Intn(10000))
	}
	for i, v := range x {
		if v > 0 {
			b.Update(i, v)
		}
	}
	got, err := b.Decode(64)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if e := vecmath.MaxAbsErr(x, got); e != 0 {
		t.Fatalf("sparse decode not exact: max err %f", e)
	}
}

func BenchmarkDecode(b *testing.B) {
	const n = 5000
	r := rand.New(rand.NewSource(12))
	br := New(Config{N: n}, rand.New(rand.NewSource(13)))
	for i := 0; i < n; i++ {
		br.Update(i, float64(r.Intn(500)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Decode(64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	br := New(Config{N: 1 << 16}, rand.New(rand.NewSource(14)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Update(i&(1<<16-1), 1)
	}
}
