package counterbraids

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file adds the merge and capture/restore surface the compressed
// counter plane (internal/sketch) and the registry entry need. Only
// the counter arrays travel: the hash functions are shared randomness
// both ends reconstruct from the seed, exactly as for the table-based
// sketches.

// ErrShapeMismatch is returned by MergeFrom when the two braids differ
// in configuration or hash seeds.
var ErrShapeMismatch = errors.New("counterbraids: braids differ in shape or seeds")

// ErrBadState is returned by Unmarshal for payloads that do not match
// the braid's configuration or violate its counter-width invariant.
var ErrBadState = errors.New("counterbraids: bad braid state")

// SameShape reports whether two braids share configuration and hash
// seeds — the precondition for an exact merge.
func (b *Braid) SameShape(o *Braid) bool {
	if b.cfg != o.cfg {
		return false
	}
	for t := range b.h1.H {
		if b.h1.H[t] != o.h1.H[t] {
			return false
		}
	}
	for t := range b.h2.H {
		if b.h2.H[t] != o.h2.H[t] {
			return false
		}
	}
	return true
}

// MergeFrom adds o's braid state into b, exactly. The braid state is a
// deterministic additive function of the per-counter inflow totals
// S_j: c1[j] = S_j mod 2^bits and the carries pushed into layer 2 sum
// to ⌊S_j/2^bits⌋. Summing the stored layer-1 values may overflow the
// counter width once more, so the merge re-applies the carry rule —
// (S_a mod M) + (S_b mod M) carries ⌊(S_a mod M + S_b mod M)/M⌋ into
// the counter's layer-2 set — and then adds the layer-2 arrays. The
// result is bit-identical to a braid that ingested both streams.
func (b *Braid) MergeFrom(o *Braid) error {
	if !b.SameShape(o) {
		return ErrShapeMismatch
	}
	for j := range b.c1 {
		sum := b.c1[j] + o.c1[j]
		b.c1[j] = sum & b.cap1
		if carry := sum >> uint(b.cfg.Layer1Bits); carry > 0 {
			for u := 0; u < b.cfg.D; u++ {
				b.c2[b.h2.H[u].Hash(uint64(j))] += carry
			}
		}
	}
	for k := range b.c2 {
		b.c2[k] += o.c2[k]
	}
	return nil
}

// Reset zeroes both counter layers, keeping the configuration and hash
// functions. Used when restoring a braid from captured state.
func (b *Braid) Reset() {
	for j := range b.c1 {
		b.c1[j] = 0
	}
	for k := range b.c2 {
		b.c2[k] = 0
	}
}

// Marshal serializes the braid counters: two u64 LE lengths, then the
// layer-1 and layer-2 arrays as u64 LE values.
func (b *Braid) Marshal() []byte {
	buf := make([]byte, 16+8*(len(b.c1)+len(b.c2)))
	binary.LittleEndian.PutUint64(buf, uint64(len(b.c1)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(b.c2)))
	off := 16
	for _, v := range b.c1 {
		binary.LittleEndian.PutUint64(buf[off:], v)
		off += 8
	}
	for _, v := range b.c2 {
		binary.LittleEndian.PutUint64(buf[off:], v)
		off += 8
	}
	return buf
}

// Unmarshal restores counters captured by Marshal on a braid built
// with the same configuration and seed. Layer-1 values beyond the
// counter ceiling are rejected: they cannot have been produced by
// Update, and accepting them would silently corrupt decode.
func (b *Braid) Unmarshal(buf []byte) error {
	if len(buf) < 16 {
		return fmt.Errorf("%w: payload %d bytes, want at least 16", ErrBadState, len(buf))
	}
	n1 := binary.LittleEndian.Uint64(buf)
	n2 := binary.LittleEndian.Uint64(buf[8:])
	if n1 != uint64(len(b.c1)) || n2 != uint64(len(b.c2)) {
		return fmt.Errorf("%w: layer sizes %d/%d, want %d/%d", ErrBadState, n1, n2, len(b.c1), len(b.c2))
	}
	if uint64(len(buf)) != 16+8*(n1+n2) {
		return fmt.Errorf("%w: payload %d bytes, want %d", ErrBadState, len(buf), 16+8*(n1+n2))
	}
	off := 16
	for j := range b.c1 {
		v := binary.LittleEndian.Uint64(buf[off:])
		if v > b.cap1 {
			return fmt.Errorf("%w: layer-1 counter %d exceeds %d-bit ceiling", ErrBadState, v, b.cfg.Layer1Bits)
		}
		b.c1[j] = v
		off += 8
	}
	for k := range b.c2 {
		b.c2[k] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	return nil
}
