package bomp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// The model BOMP targets ([31]): x = β·1 + at most k outliers.
func biasedSparse(n int, beta float64, outliers map[int]float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = beta
	}
	for i, v := range outliers {
		x[i] += v
	}
	return x
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 10, rand.New(rand.NewSource(1)))
}

func TestUpdateOutOfRangePanics(t *testing.T) {
	b := New(10, 5, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Update(10, 1)
}

func TestRecoverBiasedSparse(t *testing.T) {
	const n, tRows, k = 400, 120, 3
	r := rand.New(rand.NewSource(2))
	b := New(n, tRows, r)
	outliers := map[int]float64{17: 900, 230: -500, 399: 1200}
	x := biasedSparse(n, 100, outliers)
	for i, v := range x {
		b.Update(i, v)
	}
	xt, err := b.Recover(k)
	if err != nil {
		t.Fatal(err)
	}
	if got := vecmath.MaxAbsErr(x, xt); got > 1 {
		t.Errorf("max recovery error %f, want < 1 on exactly-biased-sparse input", got)
	}
}

func TestRecoverPureBias(t *testing.T) {
	const n, tRows = 300, 60
	b := New(n, tRows, rand.New(rand.NewSource(3)))
	x := biasedSparse(n, 42, nil)
	for i, v := range x {
		b.Update(i, v)
	}
	xt, err := b.Recover(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := vecmath.MaxAbsErr(x, xt); got > 1 {
		t.Errorf("max error %f on pure-bias input", got)
	}
}

func TestRecoverTooManyIterations(t *testing.T) {
	b := New(50, 4, rand.New(rand.NewSource(4)))
	if _, err := b.Recover(10); err == nil {
		t.Error("k+1 > t should fail")
	}
}

func TestLinearity(t *testing.T) {
	const n, tRows = 200, 50
	mk := func() *BOMP { return New(n, tRows, rand.New(rand.NewSource(5))) }
	whole, left, right := mk(), mk(), mk()
	r := rand.New(rand.NewSource(6))
	for i := 0; i < n; i++ {
		v := r.NormFloat64() * 10
		whole.Update(i, v)
		if i%2 == 0 {
			left.Update(i, v)
		} else {
			right.Update(i, v)
		}
	}
	if err := left.MergeFrom(right); err != nil {
		t.Fatal(err)
	}
	for row := range whole.y {
		if math.Abs(whole.y[row]-left.y[row]) > 1e-9 {
			t.Fatalf("sketch row %d: whole %f merged %f", row, whole.y[row], left.y[row])
		}
	}
	other := New(n, tRows+1, rand.New(rand.NewSource(5)))
	if err := whole.MergeFrom(other); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestWordsAndDim(t *testing.T) {
	b := New(128, 40, rand.New(rand.NewSource(7)))
	if b.Dim() != 128 || b.Words() != 40 {
		t.Errorf("Dim=%d Words=%d", b.Dim(), b.Words())
	}
}

// BOMP degrades when the data is biased-noisy rather than exactly
// biased-sparse (§2's criticism: no solid analysis beyond the sparse
// model). The bias-aware sketches handle this case; BOMP's recovery
// error should be clearly nonzero here.
func TestRecoverNoisyBiasDegrades(t *testing.T) {
	const n, tRows, k = 300, 90, 3
	r := rand.New(rand.NewSource(8))
	b := New(n, tRows, r)
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + r.NormFloat64()*15
	}
	for i, v := range x {
		b.Update(i, v)
	}
	xt, err := b.Recover(k)
	if err != nil {
		t.Fatal(err)
	}
	if got := vecmath.AvgAbsErr(x, xt); got < 1 {
		t.Logf("surprisingly good noisy recovery: %f", got)
	}
}

func BenchmarkRecover(b *testing.B) {
	const n, tRows, k = 400, 100, 3
	bp := New(n, tRows, rand.New(rand.NewSource(9)))
	x := biasedSparse(n, 100, map[int]float64{7: 500, 99: -300, 250: 800})
	for i, v := range x {
		bp.Update(i, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.Recover(k); err != nil {
			b.Fatal(err)
		}
	}
}
