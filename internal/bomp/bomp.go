// Package bomp implements BOMP, the compressive-sensing bias-recovery
// baseline of Yan et al. [31] as described in §2 of the paper: sketch
// with a dense Gaussian matrix Φ ∈ R^{t×n} (entries N(0, 1/t)), then
// recover by running Orthogonal Matching Pursuit for k+1 iterations on
// the augmented dictionary Φ' = [(1/√n)Σφ_i, Φ] whose prepended column
// absorbs a constant bias.
//
// The paper's criticisms — OMP is expensive and cannot answer a point
// query without decoding the whole vector — are directly visible in
// this implementation's API: there is no Query method, only Recover.
package bomp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// BOMP holds the Gaussian sketching state. It is linear (y adds), so
// it composes in the distributed model like other linear sketches.
type BOMP struct {
	n, t int
	phi  *linalg.Matrix // t×n Gaussian sketching matrix
	ones []float64      // the prepended column (1/√n)·Σ_i φ_i
	y    []float64      // the sketch Φx
}

// New creates a BOMP sketcher for n-dimensional vectors with a t-row
// Gaussian matrix drawn from r. Memory is Θ(t·n): dense Gaussian
// sketches do not scale like hash sketches, which is part of why the
// paper dismisses this baseline for large data.
func New(n, t int, r *rand.Rand) *BOMP {
	if n <= 0 || t <= 0 {
		panic(fmt.Sprintf("bomp: invalid shape n=%d t=%d", n, t))
	}
	b := &BOMP{
		n:    n,
		t:    t,
		phi:  linalg.NewMatrix(t, n),
		ones: make([]float64, t),
		y:    make([]float64, t),
	}
	sd := 1 / math.Sqrt(float64(t))
	for i := 0; i < t; i++ {
		for j := 0; j < n; j++ {
			b.phi.Set(i, j, r.NormFloat64()*sd)
		}
	}
	inv := 1 / math.Sqrt(float64(n))
	for i := 0; i < t; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += b.phi.At(i, j)
		}
		b.ones[i] = s * inv
	}
	return b
}

// Update applies x[i] += delta to the sketch: y += delta·φ_i.
func (b *BOMP) Update(i int, delta float64) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bomp: index %d out of range [0,%d)", i, b.n))
	}
	for row := 0; row < b.t; row++ {
		b.y[row] += delta * b.phi.At(row, i)
	}
}

// Dim returns n.
func (b *BOMP) Dim() int { return b.n }

// Words returns the sketch size in 64-bit words (the sketch vector y;
// Φ itself is shared randomness).
func (b *BOMP) Words() int { return b.t }

// MergeFrom adds another BOMP sharing the same matrix (by seed).
func (b *BOMP) MergeFrom(o *BOMP) error {
	if o.n != b.n || o.t != b.t {
		return fmt.Errorf("bomp: incompatible shapes")
	}
	for i := range b.y {
		b.y[i] += o.y[i]
	}
	return nil
}

// Recover runs OMP for k+1 iterations on the augmented dictionary and
// returns the reconstructed vector x̃ (biased k-sparse model: a
// constant β plus at most k outliers).
func (b *BOMP) Recover(k int) ([]float64, error) {
	iters := k + 1
	if iters > b.t {
		return nil, fmt.Errorf("bomp: k+1 = %d exceeds sketch rows %d", iters, b.t)
	}
	type column struct {
		idx  int // -1 for the bias column
		data []float64
	}
	residual := append([]float64(nil), b.y...)
	chosen := make([]column, 0, iters)
	used := map[int]bool{}
	colBuf := make([]float64, b.t)

	for it := 0; it < iters; it++ {
		// Greedy: column with the largest |⟨residual, column⟩|.
		bestIdx, bestScore := -2, -1.0
		if !used[-1] {
			if s := math.Abs(linalg.Dot(residual, b.ones)); s > bestScore {
				bestScore, bestIdx = s, -1
			}
		}
		for j := 0; j < b.n; j++ {
			if used[j] {
				continue
			}
			b.phi.Col(j, colBuf)
			if s := math.Abs(linalg.Dot(residual, colBuf)); s > bestScore {
				bestScore, bestIdx = s, j
			}
		}
		if bestIdx == -2 {
			break
		}
		used[bestIdx] = true
		var data []float64
		if bestIdx == -1 {
			data = b.ones
		} else {
			data = b.phi.Col(bestIdx, nil)
		}
		chosen = append(chosen, column{idx: bestIdx, data: data})

		// Re-fit all chosen columns (the "orthogonal" in OMP) and
		// recompute the residual.
		a := linalg.NewMatrix(b.t, len(chosen))
		for c, col := range chosen {
			for row := 0; row < b.t; row++ {
				a.Set(row, c, col.data[row])
			}
		}
		coef, err := linalg.LeastSquares(a, b.y)
		if err != nil {
			return nil, fmt.Errorf("bomp: iteration %d: %w", it, err)
		}
		fit := a.MulVec(coef)
		for row := 0; row < b.t; row++ {
			residual[row] = b.y[row] - fit[row]
		}
		if it == iters-1 {
			// Assemble x̃ from the final coefficients.
			x := make([]float64, b.n)
			for c, col := range chosen {
				if col.idx == -1 {
					beta := coef[c] / math.Sqrt(float64(b.n))
					for j := range x {
						x[j] += beta
					}
				} else {
					x[col.idx] += coef[c]
				}
			}
			return x, nil
		}
	}
	return nil, fmt.Errorf("bomp: recovery did not complete")
}
