// Package hashing provides the k-wise independent hash families used by
// every sketch in this repository.
//
// Section 4.4 of the paper observes that all analyses only use second
// moments of the bucket contents, so 2-wise independent hash functions
// suffice and each costs O(1) words to store. We implement the classic
// Carter–Wegman construction over the Mersenne prime p = 2^61 - 1, which
// gives exact pairwise independence over [p], plus a degree-3 polynomial
// variant (4-wise) used by the hashing ablation benchmark, plus simple
// tabulation hashing (tabulation.go) — 3-wise independent, no division
// on the evaluation path — as the cheaper-per-evaluation hot-path
// alternative the sketches select with sketch.HashTabulation.
package hashing

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// oneBits is the IEEE-754 encoding of +1.0. ORing a hash bit into the
// sign position yields ±1.0 without a data-dependent branch — random
// signs are coin flips, so an if/else mispredicts half the time.
const oneBits = uint64(0x3FF0000000000000)

// ErrRange is wrapped by every hash constructor handed a non-positive
// codomain size. Check with errors.Is(err, hashing.ErrRange).
var ErrRange = errors.New("hashing: range must be positive")

// MersennePrime is 2^61 - 1, the field size for all polynomial hash
// families in this package. Universe elements must be < MersennePrime.
const MersennePrime uint64 = (1 << 61) - 1

// mulModP returns (a*b) mod (2^61-1) using a 128-bit intermediate
// product and Mersenne reduction.
func mulModP(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo. Since 2^61 ≡ 1 (mod p):
	// result ≡ hi*8 + lo (mod p), but hi*8 may overflow; split lo too.
	r := (lo & MersennePrime) + (lo >> 61) + hi*8
	r = (r & MersennePrime) + (r >> 61)
	if r >= MersennePrime {
		r -= MersennePrime
	}
	return r
}

// addModP returns (a+b) mod (2^61-1) assuming a,b < 2^61-1.
func addModP(a, b uint64) uint64 {
	r := a + b
	if r >= MersennePrime {
		r -= MersennePrime
	}
	return r
}

// Pairwise is a 2-wise independent hash function from [2^61-1] into
// [Range). The zero value is unusable; construct with NewPairwise.
type Pairwise struct {
	A, B  uint64 // random coefficients, A != 0
	Range uint64 // codomain size
}

// NewPairwise draws a random pairwise hash with codomain [0, rng).
// A non-positive range returns an ErrRange-wrapped error.
func NewPairwise(r *rand.Rand, rang int) (Pairwise, error) {
	if rang <= 0 {
		return Pairwise{}, fmt.Errorf("%w: NewPairwise got %d", ErrRange, rang)
	}
	a := uint64(r.Int63n(int64(MersennePrime-1))) + 1 // a in [1, p)
	b := uint64(r.Int63n(int64(MersennePrime)))       // b in [0, p)
	return Pairwise{A: a, B: b, Range: uint64(rang)}, nil
}

// Hash maps x into [0, Range).
func (h Pairwise) Hash(x uint64) int {
	return int(addModP(mulModP(h.A, x), h.B) % h.Range)
}

// HashMany maps each coordinate xs[j] into [0, Range), writing the
// result into out[j]. It is the batch entry point of the sketches'
// row-major UpdateBatch and QueryBatch: the Carter–Wegman coefficients
// load once per row instead of once per stream element (or per point
// query), and the bounds check on out is hoisted out of the loop.
func (h Pairwise) HashMany(xs []int, out []int) {
	if len(xs) == 0 {
		return
	}
	a, b, rng := h.A, h.B, h.Range
	out = out[:len(xs)]
	for j, x := range xs {
		out[j] = int(addModP(mulModP(a, uint64(x)), b) % rng)
	}
}

// Sign is a 2-wise independent random sign function r: [n] -> {-1,+1}
// (Definition 2 of the paper uses these in the CS-matrix).
type Sign struct {
	A, B uint64
}

// NewSign draws a random pairwise sign function.
func NewSign(r *rand.Rand) Sign {
	a := uint64(r.Int63n(int64(MersennePrime-1))) + 1
	b := uint64(r.Int63n(int64(MersennePrime)))
	return Sign{A: a, B: b}
}

// Sign returns +1 or -1 for x.
func (s Sign) Sign(x uint64) int {
	v := addModP(mulModP(s.A, x), s.B)
	if v&1 == 0 {
		return 1
	}
	return -1
}

// SignFloat returns Sign(x) as a float64, avoiding a conversion at
// call sites on the sketch hot path.
func (s Sign) SignFloat(x uint64) float64 {
	v := addModP(mulModP(s.A, x), s.B)
	if v&1 == 0 {
		return 1
	}
	return -1
}

// SignFloatMany writes SignFloat(xs[j]) into out[j] for every j — the
// batch companion of HashMany for the Count-Sketch rows, on both the
// ingestion (UpdateBatch) and query (QueryBatch) sides.
func (s Sign) SignFloatMany(xs []int, out []float64) {
	if len(xs) == 0 {
		return
	}
	a, b := s.A, s.B
	out = out[:len(xs)]
	for j, x := range xs {
		v := addModP(mulModP(a, uint64(x)), b) & 1
		out[j] = math.Float64frombits(oneBits | v<<63)
	}
}

// FourWise is a 4-wise independent hash function (degree-3 polynomial
// over GF(2^61-1)) into [Range). It is used only by the hashing
// ablation; the paper's algorithms need just pairwise independence.
type FourWise struct {
	C     [4]uint64 // polynomial coefficients, C[3] != 0
	Range uint64
}

// NewFourWise draws a random 4-wise independent hash with codomain
// [0, rng). A non-positive range returns an ErrRange-wrapped error.
func NewFourWise(r *rand.Rand, rang int) (FourWise, error) {
	if rang <= 0 {
		return FourWise{}, fmt.Errorf("%w: NewFourWise got %d", ErrRange, rang)
	}
	var c [4]uint64
	for i := 0; i < 3; i++ {
		c[i] = uint64(r.Int63n(int64(MersennePrime)))
	}
	c[3] = uint64(r.Int63n(int64(MersennePrime-1))) + 1
	return FourWise{C: c, Range: uint64(rang)}, nil
}

// Hash maps x into [0, Range) by Horner evaluation of the polynomial.
func (h FourWise) Hash(x uint64) int {
	v := h.C[3]
	for i := 2; i >= 0; i-- {
		v = addModP(mulModP(v, x), h.C[i])
	}
	return int(v % h.Range)
}

// Family bundles d independent hash functions with a common codomain,
// as used for the d rows of every sketch (h_1..h_d in Theorems 1 and
// 2). Exactly one arm is populated: H for a Carter–Wegman pairwise
// family (the default, the paper's §4.4 choice), T for a tabulation
// family. The sketches' hot paths branch on T once per row and then
// run the arm's batched kernel directly, so dispatch never costs an
// interface call per element.
type Family struct {
	H []Pairwise
	T []*Tabulation
}

// NewFamily draws d independent pairwise hashes into [0, rng).
// A non-positive range returns an ErrRange-wrapped error.
func NewFamily(r *rand.Rand, d, rang int) (Family, error) {
	hs := make([]Pairwise, d)
	for i := range hs {
		h, err := NewPairwise(r, rang)
		if err != nil {
			return Family{}, err
		}
		hs[i] = h
	}
	return Family{H: hs}, nil
}

// NewTabFamily draws d independent tabulation hashes into [0, rng).
// A non-positive range returns an ErrRange-wrapped error.
func NewTabFamily(r *rand.Rand, d, rang int) (Family, error) {
	ts := make([]*Tabulation, d)
	for i := range ts {
		t, err := NewTabulation(r, rang)
		if err != nil {
			return Family{}, err
		}
		ts[i] = t
	}
	return Family{T: ts}, nil
}

// Depth returns the number of hash functions in the family.
func (f Family) Depth() int {
	if f.T != nil {
		return len(f.T)
	}
	return len(f.H)
}

// Hash maps x into [0, Range) with the family's row-t function. Cold
// callers only — the hot paths branch on the arm once and call the
// concrete function's kernels directly.
func (f Family) Hash(t int, x uint64) int {
	if f.T != nil {
		return f.T[t].Hash(x)
	}
	return f.H[t].Hash(x)
}

// HashMany maps each coordinate xs[j] into [0, Range) with the
// family's row-t function, writing results into out[j] — the batched
// row kernel of UpdateBatch/QueryBatch, dispatched once per row.
//
//sketch:hotpath
func (f Family) HashMany(t int, xs []int, out []int) {
	if f.T != nil {
		f.T[t].HashMany(xs, out)
		return
	}
	f.H[t].HashMany(xs, out)
}

// Equal reports whether two families draw the same functions — the
// shared-randomness precondition for merging sketches.
func (f Family) Equal(o Family) bool {
	if len(f.H) != len(o.H) || len(f.T) != len(o.T) {
		return false
	}
	for i := range f.H {
		if f.H[i] != o.H[i] {
			return false
		}
	}
	for i := range f.T {
		if f.T[i].Range != o.T[i].Range || f.T[i].T != o.T[i].T {
			return false
		}
	}
	return true
}

// SignFamily bundles d independent sign functions (r_1..r_d in
// Theorem 2). Like Family, exactly one arm is populated: S for
// pairwise sign functions, T for tabulation signs.
type SignFamily struct {
	S []Sign
	T []*TabSign
}

// NewSignFamily draws d independent pairwise sign functions.
func NewSignFamily(r *rand.Rand, d int) SignFamily {
	ss := make([]Sign, d)
	for i := range ss {
		ss[i] = NewSign(r)
	}
	return SignFamily{S: ss}
}

// NewTabSignFamily draws d independent tabulation sign functions.
func NewTabSignFamily(r *rand.Rand, d int) SignFamily {
	ts := make([]*TabSign, d)
	for i := range ts {
		ts[i] = NewTabSign(r)
	}
	return SignFamily{T: ts}
}

// Depth returns the number of sign functions in the family.
func (f SignFamily) Depth() int {
	if f.T != nil {
		return len(f.T)
	}
	return len(f.S)
}

// SignFloat returns the row-t sign of x as a float64. Cold callers
// only — hot paths branch on the arm once per row.
func (f SignFamily) SignFloat(t int, x uint64) float64 {
	if f.T != nil {
		return f.T[t].SignFloat(x)
	}
	return f.S[t].SignFloat(x)
}

// SignFloatMany writes the row-t sign of xs[j] into out[j] for every
// j — the batched sign kernel, dispatched once per row.
//
//sketch:hotpath
func (f SignFamily) SignFloatMany(t int, xs []int, out []float64) {
	if f.T != nil {
		f.T[t].SignFloatMany(xs, out)
		return
	}
	f.S[t].SignFloatMany(xs, out)
}

// Equal reports whether two sign families draw the same functions.
func (f SignFamily) Equal(o SignFamily) bool {
	if len(f.S) != len(o.S) || len(f.T) != len(o.T) {
		return false
	}
	for i := range f.S {
		if f.S[i] != o.S[i] {
			return false
		}
	}
	for i := range f.T {
		if f.T[i].T != o.T[i].T {
			return false
		}
	}
	return true
}
