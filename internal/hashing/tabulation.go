package hashing

import "math/rand"

// Tabulation is simple tabulation hashing (Zobrist; analyzed by
// Pǎtraşcu–Thorup): the key is split into 8 bytes, each indexes a
// table of random 64-bit words, and the results are XORed. It is
// 3-wise independent and behaves like full randomness for most
// hashing-based data structures, at the cost of 16 KiB of tables per
// function. It is the third arm of the hashing ablation
// (BenchmarkAblationHash): stronger than the paper's pairwise choice,
// cheaper to evaluate than polynomial 4-wise.
type Tabulation struct {
	T     [8][256]uint64
	Range uint64
}

// NewTabulation draws a tabulation hash with codomain [0, rng).
func NewTabulation(r *rand.Rand, rng int) *Tabulation {
	if rng <= 0 {
		panic("hashing: NewTabulation range must be positive")
	}
	t := &Tabulation{Range: uint64(rng)}
	for b := 0; b < 8; b++ {
		for v := 0; v < 256; v++ {
			t.T[b][v] = r.Uint64()
		}
	}
	return t
}

// Hash maps x into [0, Range).
func (t *Tabulation) Hash(x uint64) int {
	h := t.T[0][byte(x)] ^
		t.T[1][byte(x>>8)] ^
		t.T[2][byte(x>>16)] ^
		t.T[3][byte(x>>24)] ^
		t.T[4][byte(x>>32)] ^
		t.T[5][byte(x>>40)] ^
		t.T[6][byte(x>>48)] ^
		t.T[7][byte(x>>56)]
	return int(h % t.Range)
}

// Sign maps x to ±1 using one bit of the tabulated value.
func (t *Tabulation) Sign(x uint64) float64 {
	h := t.T[0][byte(x)] ^ t.T[7][byte(x>>56)]
	if h&(1<<63) == 0 {
		return 1
	}
	return -1
}
