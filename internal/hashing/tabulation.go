package hashing

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// Tabulation is simple tabulation hashing (Zobrist; analyzed by
// Pǎtraşcu–Thorup): the key is split into 8 bytes, each indexes a
// table of random 64-bit words, and the results are XORed. It is
// 3-wise independent and behaves like full randomness for most
// hashing-based data structures, at the cost of 16 KiB of tables per
// function. Evaluation is divisionless: the XOR of table words is
// folded into [0, Range) by the multiply-shift (fastrange) reduction
// ⌊h·Range/2^64⌋, which replaces the pairwise family's hardware
// modulo — the dominant cost of a Carter–Wegman evaluation — with one
// widening multiply. That makes tabulation the cheaper-per-evaluation
// family the hot paths select with sketch.HashTabulation; the
// analyses' second-moment requirements hold a fortiori (3-wise ⊃
// 2-wise independence), and the fastrange bucket bias is ≤ Range/2^64.
type Tabulation struct {
	T     [8][256]uint64
	Range uint64
	// hi0 = T[4][0]^..^T[7][0], the upper-half fold for keys below
	// 2^32. Sketch coordinates are vector indices, so in practice
	// every key takes this 4-lookup path; the full 8-lookup fold is
	// kept for arbitrary 64-bit keys.
	hi0 uint64
}

// NewTabulation draws a tabulation hash with codomain [0, rng).
// A non-positive range returns an ErrRange-wrapped error.
func NewTabulation(r *rand.Rand, rng int) (*Tabulation, error) {
	if rng <= 0 {
		return nil, fmt.Errorf("%w: NewTabulation got %d", ErrRange, rng)
	}
	t := &Tabulation{Range: uint64(rng)}
	for b := 0; b < 8; b++ {
		for v := 0; v < 256; v++ {
			t.T[b][v] = r.Uint64()
		}
	}
	t.hi0 = t.T[4][0] ^ t.T[5][0] ^ t.T[6][0] ^ t.T[7][0]
	return t, nil
}

// Hash maps x into [0, Range).
//
//sketch:hotpath
func (t *Tabulation) Hash(x uint64) int {
	h := t.T[0][byte(x)] ^
		t.T[1][byte(x>>8)] ^
		t.T[2][byte(x>>16)] ^
		t.T[3][byte(x>>24)]
	if x < 1<<32 {
		h ^= t.hi0
	} else {
		h ^= t.T[4][byte(x>>32)] ^
			t.T[5][byte(x>>40)] ^
			t.T[6][byte(x>>48)] ^
			t.T[7][byte(x>>56)]
	}
	hi, _ := bits.Mul64(h, t.Range)
	return int(hi)
}

// HashMany maps each coordinate xs[j] into [0, Range), writing the
// result into out[j] — the batch entry point of the sketches'
// row-major UpdateBatch and QueryBatch. The 16 KiB lookup tables load
// into L1 once per row and then serve the whole batch, and the bounds
// check on out is hoisted out of the loop.
//
//sketch:hotpath
func (t *Tabulation) HashMany(xs []int, out []int) {
	if len(xs) == 0 {
		return
	}
	rng := t.Range
	hi0 := t.hi0
	out = out[:len(xs)]
	for j, x := range xs {
		u := uint64(x)
		h := t.T[0][byte(u)] ^
			t.T[1][byte(u>>8)] ^
			t.T[2][byte(u>>16)] ^
			t.T[3][byte(u>>24)]
		if u < 1<<32 {
			h ^= hi0 // one perfectly-predicted branch: keys are indices
		} else {
			h ^= t.T[4][byte(u>>32)] ^
				t.T[5][byte(u>>40)] ^
				t.T[6][byte(u>>48)] ^
				t.T[7][byte(u>>56)]
		}
		hi, _ := bits.Mul64(h, rng)
		out[j] = int(hi)
	}
}

// TabSign is a tabulation-based random sign function r: [n] -> {-1,+1}:
// each key byte indexes a table of random bytes and the low bit of the
// XOR picks the sign. Every table bit is an independent fair coin, so
// the sign inherits tabulation's 3-wise independence — more than the
// pairwise signs the Count-Sketch analysis needs — at 2 KiB per
// function (the sign needs one output bit, so byte tables suffice and
// stay resident next to the 16 KiB bucket tables).
type TabSign struct {
	T [8][256]uint8
	// hi0 mirrors Tabulation.hi0: the upper-half fold for keys < 2^32.
	hi0 uint8
}

// NewTabSign draws a random tabulation sign function.
func NewTabSign(r *rand.Rand) *TabSign {
	s := &TabSign{}
	for b := 0; b < 8; b++ {
		for v := 0; v < 256; v++ {
			s.T[b][v] = uint8(r.Uint64())
		}
	}
	s.hi0 = s.T[4][0] ^ s.T[5][0] ^ s.T[6][0] ^ s.T[7][0]
	return s
}

// Sign returns +1 or -1 for x.
func (s *TabSign) Sign(x uint64) int {
	if s.xor(x)&1 == 0 {
		return 1
	}
	return -1
}

// SignFloat returns Sign(x) as a float64, avoiding a conversion at
// call sites on the sketch hot path.
//
//sketch:hotpath
func (s *TabSign) SignFloat(x uint64) float64 {
	if s.xor(x)&1 == 0 {
		return 1
	}
	return -1
}

// xor folds the 8 key bytes through the sign tables.
//
//sketch:hotpath
func (s *TabSign) xor(x uint64) uint8 {
	h := s.T[0][byte(x)] ^
		s.T[1][byte(x>>8)] ^
		s.T[2][byte(x>>16)] ^
		s.T[3][byte(x>>24)]
	if x < 1<<32 {
		return h ^ s.hi0
	}
	return h ^ s.T[4][byte(x>>32)] ^
		s.T[5][byte(x>>40)] ^
		s.T[6][byte(x>>48)] ^
		s.T[7][byte(x>>56)]
}

// SignFloatMany writes SignFloat(xs[j]) into out[j] for every j — the
// batch companion of HashMany for the Count-Sketch rows, on both the
// ingestion (UpdateBatch) and query (QueryBatch) sides.
//
//sketch:hotpath
func (s *TabSign) SignFloatMany(xs []int, out []float64) {
	if len(xs) == 0 {
		return
	}
	out = out[:len(xs)]
	for j, x := range xs {
		// Branchless ±1: set the IEEE sign bit of 1.0 from the hash
		// bit. A random sign is a coin flip, so an if/else here
		// mispredicts half the time.
		b := uint64(s.xor(uint64(x)) & 1)
		out[j] = math.Float64frombits(oneBits | b<<63)
	}
}
