// AllocsPerRun gates are meaningless under the race detector (see
// internal/sketch/alloc_test.go for the rationale).
//go:build !race

package hashing

import (
	"math/rand"
	"testing"
)

// The batched kernels are the per-row inner loops of every sketch's
// hot path: they must stay allocation-free for both arms of the
// family dispatch (pairwise and tabulation).
func TestBatchedKernelsAllocFree(t *testing.T) {
	const rang, n = 4096, 600
	r := rand.New(rand.NewSource(7))
	xs := make([]int, n)
	for i := range xs {
		xs[i] = r.Intn(1 << 20)
	}
	hout := make([]int, n)
	sout := make([]float64, n)

	for name, f := range map[string]Family{
		"pairwise":   mustFamily(NewFamily(r, 3, rang)),
		"tabulation": mustFamily(NewTabFamily(r, 3, rang)),
	} {
		f := f
		if a := testing.AllocsPerRun(50, func() { f.HashMany(1, xs, hout) }); a != 0 {
			t.Errorf("%s Family.HashMany allocates %.1f per call", name, a)
		}
	}
	for name, f := range map[string]SignFamily{
		"pairwise":   NewSignFamily(r, 3),
		"tabulation": NewTabSignFamily(r, 3),
	} {
		f := f
		if a := testing.AllocsPerRun(50, func() { f.SignFloatMany(1, xs, sout) }); a != 0 {
			t.Errorf("%s SignFamily.SignFloatMany allocates %.1f per call", name, a)
		}
	}
}

func mustFamily(f Family, err error) Family {
	if err != nil {
		panic(err)
	}
	return f
}
