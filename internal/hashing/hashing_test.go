package hashing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulModPSmall(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 1, 1},
		{2, 3, 6},
		{MersennePrime - 1, 1, MersennePrime - 1},
		{MersennePrime - 1, 2, MersennePrime - 2},
	}
	for _, c := range cases {
		if got := mulModP(c.a, c.b); got != c.want {
			t.Errorf("mulModP(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulModPAgainstBigArithmetic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a := uint64(r.Int63n(int64(MersennePrime)))
		b := uint64(r.Int63n(int64(MersennePrime)))
		// Reference via 128-bit math using math/bits through repeated
		// shift-add (slow but obviously correct for the test).
		want := slowMulMod(a, b)
		if got := mulModP(a, b); got != want {
			t.Fatalf("mulModP(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

// slowMulMod computes (a*b) mod p by binary decomposition of b.
func slowMulMod(a, b uint64) uint64 {
	var res uint64
	a %= MersennePrime
	for b > 0 {
		if b&1 == 1 {
			res = addModP(res, a)
		}
		a = addModP(a, a)
		b >>= 1
	}
	return res
}

func TestPairwiseRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, rang := range []int{1, 2, 7, 100, 1 << 20} {
		h := NewPairwise(r, rang)
		for x := uint64(0); x < 1000; x++ {
			v := h.Hash(x)
			if v < 0 || v >= rang {
				t.Fatalf("Hash(%d) = %d out of range [0,%d)", x, v, rang)
			}
		}
	}
}

func TestPairwisePanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive range")
		}
	}()
	NewPairwise(rand.New(rand.NewSource(3)), 0)
}

func TestFourWisePanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive range")
		}
	}()
	NewFourWise(rand.New(rand.NewSource(3)), -1)
}

// TestPairwiseUniformity checks that bucket loads are near-uniform:
// hashing n items into s buckets should give each bucket close to n/s.
func TestPairwiseUniformity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n, s = 200000, 64
	counts := make([]int, s)
	h := NewPairwise(r, s)
	for x := 0; x < n; x++ {
		counts[h.Hash(uint64(x))]++
	}
	want := float64(n) / s
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.25*want {
			t.Errorf("bucket %d load %d deviates more than 25%% from %f", i, c, want)
		}
	}
}

// TestPairwiseCollisionProbability estimates Pr[h(x)=h(y)] over random
// draws of h for fixed x != y; pairwise independence implies it is
// ~1/s (within sampling noise).
func TestPairwiseCollisionProbability(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const trials, s = 40000, 16
	coll := 0
	for i := 0; i < trials; i++ {
		h := NewPairwise(r, s)
		if h.Hash(12345) == h.Hash(67890) {
			coll++
		}
	}
	p := float64(coll) / trials
	if math.Abs(p-1.0/s) > 0.015 {
		t.Errorf("collision probability %f, want ~%f", p, 1.0/s)
	}
}

// TestSignBalance checks that a pairwise sign function is balanced and
// that products of signs at distinct points are uncorrelated.
func TestSignBalance(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const trials = 40000
	sum := 0
	prodSum := 0
	for i := 0; i < trials; i++ {
		sg := NewSign(r)
		sum += sg.Sign(42)
		prodSum += sg.Sign(42) * sg.Sign(43)
	}
	if math.Abs(float64(sum)/trials) > 0.02 {
		t.Errorf("E[sign] = %f, want ~0", float64(sum)/trials)
	}
	if math.Abs(float64(prodSum)/trials) > 0.02 {
		t.Errorf("E[sign(x)sign(y)] = %f, want ~0", float64(prodSum)/trials)
	}
}

func TestSignFloatMatchesSign(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sg := NewSign(r)
	for x := uint64(0); x < 10000; x++ {
		if float64(sg.Sign(x)) != sg.SignFloat(x) {
			t.Fatalf("SignFloat mismatch at %d", x)
		}
	}
}

func TestFourWiseRange(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	h := NewFourWise(r, 97)
	for x := uint64(0); x < 5000; x++ {
		v := h.Hash(x)
		if v < 0 || v >= 97 {
			t.Fatalf("FourWise.Hash(%d) = %d out of range", x, v)
		}
	}
}

func TestFourWiseUniformity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const n, s = 200000, 64
	counts := make([]int, s)
	h := NewFourWise(r, s)
	for x := 0; x < n; x++ {
		counts[h.Hash(uint64(x))]++
	}
	want := float64(n) / s
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.25*want {
			t.Errorf("bucket %d load %d deviates more than 25%% from %f", i, c, want)
		}
	}
}

func TestFamilyDepth(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	f := NewFamily(r, 9, 128)
	if f.Depth() != 9 {
		t.Fatalf("Depth = %d, want 9", f.Depth())
	}
	sf := NewSignFamily(r, 9)
	if sf.Depth() != 9 {
		t.Fatalf("SignFamily.Depth = %d, want 9", sf.Depth())
	}
}

// TestFamilyIndependentMembers verifies members of a family are
// distinct functions (no accidental seed reuse).
func TestFamilyIndependentMembers(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := NewFamily(r, 8, 1<<20)
	for i := 0; i < f.Depth(); i++ {
		for j := i + 1; j < f.Depth(); j++ {
			if f.H[i] == f.H[j] {
				t.Fatalf("family members %d and %d identical", i, j)
			}
		}
	}
}

// Property: Hash is deterministic — the same function applied twice to
// the same input yields the same value.
func TestHashDeterministicProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	h := NewPairwise(r, 1000)
	f := func(x uint64) bool {
		x %= MersennePrime
		return h.Hash(x) == h.Hash(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mulModP is commutative.
func TestMulModPCommutativeProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		return mulModP(a, b) == mulModP(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: mulModP distributes over addModP.
func TestMulModPDistributiveProperty(t *testing.T) {
	f := func(a, b, c uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		c %= MersennePrime
		return mulModP(a, addModP(b, c)) == addModP(mulModP(a, b), mulModP(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPairwiseHash(b *testing.B) {
	h := NewPairwise(rand.New(rand.NewSource(1)), 1<<16)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkFourWiseHash(b *testing.B) {
	h := NewFourWise(rand.New(rand.NewSource(1)), 1<<16)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkSign(b *testing.B) {
	s := NewSign(rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Sign(uint64(i))
	}
	_ = sink
}

func TestTabulationRangeAndUniformity(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	const n, s = 200000, 64
	h := NewTabulation(r, s)
	counts := make([]int, s)
	for x := 0; x < n; x++ {
		v := h.Hash(uint64(x))
		if v < 0 || v >= s {
			t.Fatalf("Hash(%d) = %d out of range", x, v)
		}
		counts[v]++
	}
	want := float64(n) / s
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.25*want {
			t.Errorf("bucket %d load %d deviates from %f", i, c, want)
		}
	}
}

func TestTabulationPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTabulation(rand.New(rand.NewSource(31)), 0)
}

func TestTabulationCollisionRate(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	const trials, s = 40000, 16
	coll := 0
	for i := 0; i < trials; i++ {
		h := NewTabulation(r, s)
		if h.Hash(12345) == h.Hash(67890) {
			coll++
		}
	}
	p := float64(coll) / trials
	if math.Abs(p-1.0/s) > 0.015 {
		t.Errorf("collision probability %f, want ~%f", p, 1.0/s)
	}
}

func TestTabulationSignBalance(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	h := NewTabulation(r, 2)
	sum := 0.0
	for x := 0; x < 100000; x++ {
		s := h.Sign(uint64(x))
		if s != 1 && s != -1 {
			t.Fatalf("Sign(%d) = %f", x, s)
		}
		sum += s
	}
	if math.Abs(sum)/100000 > 0.02 {
		t.Errorf("sign imbalance %f", sum/100000)
	}
}

func BenchmarkTabulationHash(b *testing.B) {
	h := NewTabulation(rand.New(rand.NewSource(1)), 1<<16)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

// HashMany must agree with element-wise Hash for every element — the
// batch path is an optimization, never a different function.
func TestHashManyMatchesHash(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for trial := 0; trial < 20; trial++ {
		h := NewPairwise(r, 1+r.Intn(5000))
		xs := make([]int, 1+r.Intn(300))
		for j := range xs {
			xs[j] = r.Intn(1 << 20)
		}
		out := make([]int, len(xs))
		h.HashMany(xs, out)
		for j, x := range xs {
			if want := h.Hash(uint64(x)); out[j] != want {
				t.Fatalf("trial %d: HashMany[%d] = %d, Hash = %d", trial, j, out[j], want)
			}
		}
	}
	// Empty batch is a no-op, not a panic.
	NewPairwise(r, 16).HashMany(nil, nil)
}

func TestSignFloatManyMatchesSignFloat(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		s := NewSign(r)
		xs := make([]int, 1+r.Intn(300))
		for j := range xs {
			xs[j] = r.Intn(1 << 20)
		}
		out := make([]float64, len(xs))
		s.SignFloatMany(xs, out)
		for j, x := range xs {
			if want := s.SignFloat(uint64(x)); out[j] != want {
				t.Fatalf("trial %d: SignFloatMany[%d] = %f, SignFloat = %f", trial, j, out[j], want)
			}
		}
	}
	NewSign(r).SignFloatMany(nil, nil)
}

func BenchmarkPairwiseHashMany(b *testing.B) {
	h := NewPairwise(rand.New(rand.NewSource(1)), 4096)
	xs := make([]int, 1024)
	for j := range xs {
		xs[j] = j * 31
	}
	out := make([]int, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.HashMany(xs, out)
	}
}
