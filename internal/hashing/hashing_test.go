package hashing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// must unwraps a constructor result; the tests construct with known-good
// ranges, so an error here is a test bug.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestMulModPSmall(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 1, 1},
		{2, 3, 6},
		{MersennePrime - 1, 1, MersennePrime - 1},
		{MersennePrime - 1, 2, MersennePrime - 2},
	}
	for _, c := range cases {
		if got := mulModP(c.a, c.b); got != c.want {
			t.Errorf("mulModP(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulModPAgainstBigArithmetic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a := uint64(r.Int63n(int64(MersennePrime)))
		b := uint64(r.Int63n(int64(MersennePrime)))
		// Reference via 128-bit math using math/bits through repeated
		// shift-add (slow but obviously correct for the test).
		want := slowMulMod(a, b)
		if got := mulModP(a, b); got != want {
			t.Fatalf("mulModP(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

// slowMulMod computes (a*b) mod p by binary decomposition of b.
func slowMulMod(a, b uint64) uint64 {
	var res uint64
	a %= MersennePrime
	for b > 0 {
		if b&1 == 1 {
			res = addModP(res, a)
		}
		a = addModP(a, a)
		b >>= 1
	}
	return res
}

func TestPairwiseRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, rang := range []int{1, 2, 7, 100, 1 << 20} {
		h := must(NewPairwise(r, rang))
		for x := uint64(0); x < 1000; x++ {
			v := h.Hash(x)
			if v < 0 || v >= rang {
				t.Fatalf("Hash(%d) = %d out of range [0,%d)", x, v, rang)
			}
		}
	}
}

// TestConstructorsRejectBadRange is the table-driven option-validation
// suite: every hash constructor must return an ErrRange-wrapped typed
// error (never panic) on a non-positive codomain, per the typederr
// contract.
func TestConstructorsRejectBadRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cases := []struct {
		name string
		rang int
		ctor func(rang int) error
	}{
		{"NewPairwise/zero", 0, func(g int) error { _, err := NewPairwise(r, g); return err }},
		{"NewPairwise/negative", -1, func(g int) error { _, err := NewPairwise(r, g); return err }},
		{"NewFourWise/zero", 0, func(g int) error { _, err := NewFourWise(r, g); return err }},
		{"NewFourWise/negative", -7, func(g int) error { _, err := NewFourWise(r, g); return err }},
		{"NewTabulation/zero", 0, func(g int) error { _, err := NewTabulation(r, g); return err }},
		{"NewTabulation/negative", -3, func(g int) error { _, err := NewTabulation(r, g); return err }},
		{"NewFamily/zero", 0, func(g int) error { _, err := NewFamily(r, 4, g); return err }},
		{"NewTabFamily/negative", -2, func(g int) error { _, err := NewTabFamily(r, 4, g); return err }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.ctor(c.rang)
			if err == nil {
				t.Fatalf("range %d: want error, got nil", c.rang)
			}
			if !errors.Is(err, ErrRange) {
				t.Fatalf("range %d: error %v is not ErrRange", c.rang, err)
			}
		})
	}
	// Good ranges must not error.
	if _, err := NewPairwise(r, 1); err != nil {
		t.Fatalf("NewPairwise(1): %v", err)
	}
	if _, err := NewTabulation(r, 1); err != nil {
		t.Fatalf("NewTabulation(1): %v", err)
	}
}

// TestPairwiseUniformity checks that bucket loads are near-uniform:
// hashing n items into s buckets should give each bucket close to n/s.
func TestPairwiseUniformity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n, s = 200000, 64
	counts := make([]int, s)
	h := must(NewPairwise(r, s))
	for x := 0; x < n; x++ {
		counts[h.Hash(uint64(x))]++
	}
	want := float64(n) / s
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.25*want {
			t.Errorf("bucket %d load %d deviates more than 25%% from %f", i, c, want)
		}
	}
}

// TestPairwiseCollisionProbability estimates Pr[h(x)=h(y)] over random
// draws of h for fixed x != y; pairwise independence implies it is
// ~1/s (within sampling noise).
func TestPairwiseCollisionProbability(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const trials, s = 40000, 16
	coll := 0
	for i := 0; i < trials; i++ {
		h := must(NewPairwise(r, s))
		if h.Hash(12345) == h.Hash(67890) {
			coll++
		}
	}
	p := float64(coll) / trials
	if math.Abs(p-1.0/s) > 0.015 {
		t.Errorf("collision probability %f, want ~%f", p, 1.0/s)
	}
}

// TestSignBalance checks that a pairwise sign function is balanced and
// that products of signs at distinct points are uncorrelated.
func TestSignBalance(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const trials = 40000
	sum := 0
	prodSum := 0
	for i := 0; i < trials; i++ {
		sg := NewSign(r)
		sum += sg.Sign(42)
		prodSum += sg.Sign(42) * sg.Sign(43)
	}
	if math.Abs(float64(sum)/trials) > 0.02 {
		t.Errorf("E[sign] = %f, want ~0", float64(sum)/trials)
	}
	if math.Abs(float64(prodSum)/trials) > 0.02 {
		t.Errorf("E[sign(x)sign(y)] = %f, want ~0", float64(prodSum)/trials)
	}
}

func TestSignFloatMatchesSign(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sg := NewSign(r)
	for x := uint64(0); x < 10000; x++ {
		if float64(sg.Sign(x)) != sg.SignFloat(x) {
			t.Fatalf("SignFloat mismatch at %d", x)
		}
	}
}

func TestFourWiseRange(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	h := must(NewFourWise(r, 97))
	for x := uint64(0); x < 5000; x++ {
		v := h.Hash(x)
		if v < 0 || v >= 97 {
			t.Fatalf("FourWise.Hash(%d) = %d out of range", x, v)
		}
	}
}

func TestFourWiseUniformity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const n, s = 200000, 64
	counts := make([]int, s)
	h := must(NewFourWise(r, s))
	for x := 0; x < n; x++ {
		counts[h.Hash(uint64(x))]++
	}
	want := float64(n) / s
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.25*want {
			t.Errorf("bucket %d load %d deviates more than 25%% from %f", i, c, want)
		}
	}
}

func TestFamilyDepth(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	f := must(NewFamily(r, 9, 128))
	if f.Depth() != 9 {
		t.Fatalf("Depth = %d, want 9", f.Depth())
	}
	sf := NewSignFamily(r, 9)
	if sf.Depth() != 9 {
		t.Fatalf("SignFamily.Depth = %d, want 9", sf.Depth())
	}
}

// TestFamilyIndependentMembers verifies members of a family are
// distinct functions (no accidental seed reuse).
func TestFamilyIndependentMembers(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := must(NewFamily(r, 8, 1<<20))
	for i := 0; i < f.Depth(); i++ {
		for j := i + 1; j < f.Depth(); j++ {
			if f.H[i] == f.H[j] {
				t.Fatalf("family members %d and %d identical", i, j)
			}
		}
	}
}

// Property: Hash is deterministic — the same function applied twice to
// the same input yields the same value.
func TestHashDeterministicProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	h := must(NewPairwise(r, 1000))
	f := func(x uint64) bool {
		x %= MersennePrime
		return h.Hash(x) == h.Hash(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mulModP is commutative.
func TestMulModPCommutativeProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		return mulModP(a, b) == mulModP(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: mulModP distributes over addModP.
func TestMulModPDistributiveProperty(t *testing.T) {
	f := func(a, b, c uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		c %= MersennePrime
		return mulModP(a, addModP(b, c)) == addModP(mulModP(a, b), mulModP(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPairwiseHash(b *testing.B) {
	h := must(NewPairwise(rand.New(rand.NewSource(1)), 1<<16))
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkFourWiseHash(b *testing.B) {
	h := must(NewFourWise(rand.New(rand.NewSource(1)), 1<<16))
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkSign(b *testing.B) {
	s := NewSign(rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Sign(uint64(i))
	}
	_ = sink
}

func TestTabulationRangeAndUniformity(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	const n, s = 200000, 64
	h := must(NewTabulation(r, s))
	counts := make([]int, s)
	for x := 0; x < n; x++ {
		v := h.Hash(uint64(x))
		if v < 0 || v >= s {
			t.Fatalf("Hash(%d) = %d out of range", x, v)
		}
		counts[v]++
	}
	want := float64(n) / s
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.25*want {
			t.Errorf("bucket %d load %d deviates from %f", i, c, want)
		}
	}
}

// TestTabulationFastrangeBias spot-checks the multiply-shift reduction:
// every output must land in [0, Range) even for range sizes that do not
// divide 2^64 (where a naive modulo and fastrange disagree on layout
// but both must stay in bounds).
func TestTabulationFastrangeBias(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, s := range []int{1, 3, 1000, 4096, 5000} {
		h := must(NewTabulation(r, s))
		for x := uint64(0); x < 2000; x++ {
			if v := h.Hash(x); v < 0 || v >= s {
				t.Fatalf("range %d: Hash(%d) = %d out of bounds", s, x, v)
			}
		}
	}
}

func TestTabulationCollisionRate(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	const trials, s = 40000, 16
	coll := 0
	for i := 0; i < trials; i++ {
		h := must(NewTabulation(r, s))
		if h.Hash(12345) == h.Hash(67890) {
			coll++
		}
	}
	p := float64(coll) / trials
	if math.Abs(p-1.0/s) > 0.015 {
		t.Errorf("collision probability %f, want ~%f", p, 1.0/s)
	}
}

func TestTabSignBalance(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	h := NewTabSign(r)
	sum := 0
	for x := 0; x < 100000; x++ {
		s := h.Sign(uint64(x))
		if s != 1 && s != -1 {
			t.Fatalf("Sign(%d) = %d", x, s)
		}
		sum += s
	}
	if math.Abs(float64(sum))/100000 > 0.02 {
		t.Errorf("sign imbalance %f", float64(sum)/100000)
	}
}

func TestTabSignFloatMatchesSign(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	h := NewTabSign(r)
	for x := uint64(0); x < 10000; x++ {
		if float64(h.Sign(x)) != h.SignFloat(x) {
			t.Fatalf("SignFloat mismatch at %d", x)
		}
	}
}

// The batch tabulation kernels must agree element-wise with their
// scalar counterparts — the batch path is an optimization, never a
// different function.
func TestTabulationHashManyMatchesHash(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := must(NewTabulation(r, 1+r.Intn(5000)))
		xs := make([]int, 1+r.Intn(300))
		for j := range xs {
			xs[j] = r.Intn(1 << 20)
		}
		out := make([]int, len(xs))
		h.HashMany(xs, out)
		for j, x := range xs {
			if want := h.Hash(uint64(x)); out[j] != want {
				t.Fatalf("trial %d: HashMany[%d] = %d, Hash = %d", trial, j, out[j], want)
			}
		}
	}
	must(NewTabulation(r, 16)).HashMany(nil, nil)
}

func TestTabSignFloatManyMatchesSignFloat(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		s := NewTabSign(r)
		xs := make([]int, 1+r.Intn(300))
		for j := range xs {
			xs[j] = r.Intn(1 << 20)
		}
		out := make([]float64, len(xs))
		s.SignFloatMany(xs, out)
		for j, x := range xs {
			if want := s.SignFloat(uint64(x)); out[j] != want {
				t.Fatalf("trial %d: SignFloatMany[%d] = %f, SignFloat = %f", trial, j, out[j], want)
			}
		}
	}
	NewTabSign(r).SignFloatMany(nil, nil)
}

// TestTabulationChiSquared is the bucket-distribution sanity test: hash
// n keys into s buckets and check the chi-squared statistic against a
// generous cutoff (for s-1 = 63 degrees of freedom the 99.9th
// percentile is ~103; we allow 130 to keep the test deterministic-seed
// stable while still catching gross non-uniformity).
func TestTabulationChiSquared(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	const n, s = 200000, 64
	h := must(NewTabulation(r, s))
	counts := make([]int, s)
	for x := 0; x < n; x++ {
		counts[h.Hash(uint64(x))]++
	}
	expected := float64(n) / s
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 130 {
		t.Errorf("chi-squared = %f, want < 130 for %d buckets", chi2, s)
	}
}

// TestFamilyDispatch checks that the two-arm Family/SignFamily wrappers
// route to the populated arm and that Equal distinguishes families.
func TestFamilyDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	const d, s = 5, 1024
	pf := must(NewFamily(r, d, s))
	tf := must(NewTabFamily(r, d, s))
	if pf.Depth() != d || tf.Depth() != d {
		t.Fatalf("Depth: pairwise %d tabulation %d, want %d", pf.Depth(), tf.Depth(), d)
	}
	xs := []int{0, 1, 17, 9999, 123456}
	out := make([]int, len(xs))
	for t0 := 0; t0 < d; t0++ {
		pf.HashMany(t0, xs, out)
		for j, x := range xs {
			if out[j] != pf.H[t0].Hash(uint64(x)) || out[j] != pf.Hash(t0, uint64(x)) {
				t.Fatalf("pairwise family dispatch mismatch at row %d elem %d", t0, j)
			}
		}
		tf.HashMany(t0, xs, out)
		for j, x := range xs {
			if out[j] != tf.T[t0].Hash(uint64(x)) || out[j] != tf.Hash(t0, uint64(x)) {
				t.Fatalf("tabulation family dispatch mismatch at row %d elem %d", t0, j)
			}
		}
	}
	if !pf.Equal(pf) || !tf.Equal(tf) {
		t.Fatal("family not Equal to itself")
	}
	if pf.Equal(tf) || tf.Equal(pf) {
		t.Fatal("pairwise and tabulation families compare Equal")
	}
	other := must(NewTabFamily(r, d, s))
	if tf.Equal(other) {
		t.Fatal("independently drawn tabulation families compare Equal")
	}

	ps := NewSignFamily(r, d)
	ts := NewTabSignFamily(r, d)
	if ps.Depth() != d || ts.Depth() != d {
		t.Fatalf("SignFamily.Depth: %d / %d, want %d", ps.Depth(), ts.Depth(), d)
	}
	fout := make([]float64, len(xs))
	for t0 := 0; t0 < d; t0++ {
		ps.SignFloatMany(t0, xs, fout)
		for j, x := range xs {
			if fout[j] != ps.S[t0].SignFloat(uint64(x)) || fout[j] != ps.SignFloat(t0, uint64(x)) {
				t.Fatalf("pairwise sign dispatch mismatch at row %d elem %d", t0, j)
			}
		}
		ts.SignFloatMany(t0, xs, fout)
		for j, x := range xs {
			if fout[j] != ts.T[t0].SignFloat(uint64(x)) || fout[j] != ts.SignFloat(t0, uint64(x)) {
				t.Fatalf("tabulation sign dispatch mismatch at row %d elem %d", t0, j)
			}
		}
	}
	if !ps.Equal(ps) || !ts.Equal(ts) {
		t.Fatal("sign family not Equal to itself")
	}
	if ps.Equal(ts) {
		t.Fatal("pairwise and tabulation sign families compare Equal")
	}
	if ts.Equal(NewTabSignFamily(r, d)) {
		t.Fatal("independently drawn tabulation sign families compare Equal")
	}
}

func BenchmarkTabulationHash(b *testing.B) {
	h := must(NewTabulation(rand.New(rand.NewSource(1)), 1<<16))
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

// HashMany must agree with element-wise Hash for every element — the
// batch path is an optimization, never a different function.
func TestHashManyMatchesHash(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for trial := 0; trial < 20; trial++ {
		h := must(NewPairwise(r, 1+r.Intn(5000)))
		xs := make([]int, 1+r.Intn(300))
		for j := range xs {
			xs[j] = r.Intn(1 << 20)
		}
		out := make([]int, len(xs))
		h.HashMany(xs, out)
		for j, x := range xs {
			if want := h.Hash(uint64(x)); out[j] != want {
				t.Fatalf("trial %d: HashMany[%d] = %d, Hash = %d", trial, j, out[j], want)
			}
		}
	}
	// Empty batch is a no-op, not a panic.
	must(NewPairwise(r, 16)).HashMany(nil, nil)
}

func TestSignFloatManyMatchesSignFloat(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		s := NewSign(r)
		xs := make([]int, 1+r.Intn(300))
		for j := range xs {
			xs[j] = r.Intn(1 << 20)
		}
		out := make([]float64, len(xs))
		s.SignFloatMany(xs, out)
		for j, x := range xs {
			if want := s.SignFloat(uint64(x)); out[j] != want {
				t.Fatalf("trial %d: SignFloatMany[%d] = %f, SignFloat = %f", trial, j, out[j], want)
			}
		}
	}
	NewSign(r).SignFloatMany(nil, nil)
}

func BenchmarkTabulationHashMany(b *testing.B) {
	h := must(NewTabulation(rand.New(rand.NewSource(1)), 4096))
	xs := make([]int, 1024)
	for j := range xs {
		xs[j] = j * 31
	}
	out := make([]int, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.HashMany(xs, out)
	}
}

func BenchmarkPairwiseHashMany(b *testing.B) {
	h := must(NewPairwise(rand.New(rand.NewSource(1)), 4096))
	xs := make([]int, 1024)
	for j := range xs {
		xs[j] = j * 31
	}
	out := make([]int, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.HashMany(xs, out)
	}
}
