package biasheap

import (
	"math"
	"testing"
)

// FuzzHeapAgainstReference drives the Bias-Heap with an arbitrary
// byte-encoded update schedule and checks the maintained middle sums
// against the sort-based reference after every step.
func FuzzHeapAgainstReference(f *testing.F) {
	f.Add(uint8(8), uint8(4), []byte{0, 10, 1, 200, 2, 30})
	f.Add(uint8(5), uint8(1), []byte{4, 128, 4, 127, 0, 0})
	f.Fuzz(func(t *testing.T, sRaw, midRaw uint8, ops []byte) {
		s := 2 + int(sRaw)%30
		mid := 1 + int(midRaw)%s
		pi := make([]float64, s)
		for i := range pi {
			pi[i] = float64(1 + (i*7)%5)
		}
		h := New(pi, mid)
		w := make([]float64, s)
		topSize := (s - mid) / 2
		botSize := (s - mid) - topSize
		for i := 0; i+1 < len(ops) && i < 200; i += 2 {
			id := int(ops[i]) % s
			delta := float64(int(ops[i+1]) - 128)
			h.Update(id, delta)
			w[id] += delta
			gotW, gotPi := h.MiddleSums()
			wantW, wantPi := refMiddle(w, pi, topSize, botSize)
			if math.Abs(gotW-wantW) > 1e-6 || math.Abs(gotPi-wantPi) > 1e-6 {
				t.Fatalf("s=%d mid=%d step=%d: middle (%g,%g) want (%g,%g)",
					s, mid, i/2, gotW, gotPi, wantW, wantPi)
			}
		}
	})
}
