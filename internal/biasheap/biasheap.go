// Package biasheap implements the Bias-Heap of Algorithm 5: a
// structure over the s buckets of the CM-matrix Π(g) that maintains,
// under streaming updates, the sum of bucket masses w_i and column
// counts π_i restricted to the "middle" buckets in w_i/π_i order. The
// ℓ2 bias estimate of Algorithm 4,
//
//	β̂ = Σ_{middle} w_i / Σ_{middle} π_i,
//
// is then answerable in O(1) after O(log s) maintenance per update.
//
// Four indexed heaps partition the buckets twice (following the
// paper's A/B/C/D scheme): A holds the top section and B the rest
// (invariant min A ≥ max B), C holds the bottom section and D the rest
// (invariant max C ≤ min D). The middle is B ∩ D. An update changes a
// single bucket's key, so restoring each boundary needs at most one
// top swap.
package biasheap

import "fmt"

// Heap is the Bias-Heap. Construct with New.
type Heap struct {
	s        int
	topSize  int // |A|
	botSize  int // |C|
	w        []float64
	pi       []float64
	inA, inC []bool

	a, b, c, d *indexedHeap

	wTot, piTot      float64
	wA, piA, wC, piC float64
}

// New creates a Bias-Heap over s = len(pi) buckets, where pi[i] is the
// number of input coordinates hashing to bucket i (the coordinate-wise
// column sums of Π(g)) and mid is the number of middle buckets kept by
// the bias estimate (2k in Algorithm 4; Algorithm 5 sets mid = s/2 via
// its internal k = s/4). Requires 1 <= mid <= s.
func New(pi []float64, mid int) *Heap {
	s := len(pi)
	if s == 0 {
		panic("biasheap: no buckets")
	}
	if mid < 1 || mid > s {
		panic(fmt.Sprintf("biasheap: mid %d out of range [1,%d]", mid, s))
	}
	h := &Heap{
		s:       s,
		topSize: (s - mid) / 2,
		botSize: (s - mid) - (s-mid)/2,
		w:       make([]float64, s),
		pi:      append([]float64(nil), pi...),
		inA:     make([]bool, s),
		inC:     make([]bool, s),
	}
	for _, p := range pi {
		h.piTot += p
	}
	// All keys start equal (w = 0), so the initial sections follow id
	// order under the (key, id) total order: C gets the lowest ids, A
	// the highest.
	h.a = newIndexedHeap(h, false) // min-heap: top = smallest of the top section
	h.b = newIndexedHeap(h, true)  // max-heap: top = largest of the rest
	h.c = newIndexedHeap(h, true)  // max-heap: top = largest of the bottom section
	h.d = newIndexedHeap(h, false) // min-heap: top = smallest of the rest
	for id := 0; id < s; id++ {
		if id >= s-h.topSize {
			h.inA[id] = true
			h.a.push(id)
			h.wA += h.w[id]
			h.piA += pi[id]
		} else {
			h.b.push(id)
		}
		if id < h.botSize {
			h.inC[id] = true
			h.c.push(id)
			h.wC += h.w[id]
			h.piC += pi[id]
		} else {
			h.d.push(id)
		}
	}
	return h
}

// key orders buckets by average coordinate value w/π; buckets with
// π = 0 can never receive updates and keep key 0.
func (h *Heap) key(id int) float64 {
	if h.pi[id] == 0 {
		return 0
	}
	return h.w[id] / h.pi[id]
}

// less is the strict total order (key, id) used by all four heaps.
func (h *Heap) less(x, y int) bool {
	kx, ky := h.key(x), h.key(y)
	if kx != ky {
		return kx < ky
	}
	return x < y
}

// Update adds delta to bucket id's mass and restores the section
// invariants. O(log s).
func (h *Heap) Update(id int, delta float64) {
	if id < 0 || id >= h.s {
		panic(fmt.Sprintf("biasheap: bucket %d out of range [0,%d)", id, h.s))
	}
	h.w[id] += delta
	h.wTot += delta
	if h.inA[id] {
		h.wA += delta
	}
	if h.inC[id] {
		h.wC += delta
	}
	// Re-seat the bucket inside its two heaps.
	if h.inA[id] {
		h.a.fix(id)
	} else {
		h.b.fix(id)
	}
	if h.inC[id] {
		h.c.fix(id)
	} else {
		h.d.fix(id)
	}
	// Boundary repairs (Algorithm 5 lines 13–16). A single key change
	// needs at most one swap per boundary; loops are belt-and-braces.
	for h.topSize > 0 && h.b.len() > 0 && h.less(h.a.top(), h.b.top()) {
		h.swapAB()
	}
	for h.botSize > 0 && h.d.len() > 0 && h.less(h.d.top(), h.c.top()) {
		h.swapCD()
	}
}

func (h *Heap) swapAB() {
	x, y := h.a.top(), h.b.top() // x leaves A, y enters A
	h.a.remove(x)
	h.b.remove(y)
	h.a.push(y)
	h.b.push(x)
	h.inA[x], h.inA[y] = false, true
	h.wA += h.w[y] - h.w[x]
	h.piA += h.pi[y] - h.pi[x]
}

func (h *Heap) swapCD() {
	x, y := h.c.top(), h.d.top() // x leaves C, y enters C
	h.c.remove(x)
	h.d.remove(y)
	h.c.push(y)
	h.d.push(x)
	h.inC[x], h.inC[y] = false, true
	h.wC += h.w[y] - h.w[x]
	h.piC += h.pi[y] - h.pi[x]
}

// Bias returns the current estimate (w − w_A − w_C)/(‖π‖₁ − π_A − π_C)
// (Algorithm 5 line 19). If the middle carries no coordinates it falls
// back to the global average, then to 0.
func (h *Heap) Bias() float64 {
	den := h.piTot - h.piA - h.piC
	if den > 0 {
		return (h.wTot - h.wA - h.wC) / den
	}
	if h.piTot > 0 {
		return h.wTot / h.piTot
	}
	return 0
}

// MiddleSums exposes the maintained middle-section sums (Σw, Σπ) for
// verification against a sort-based reference.
func (h *Heap) MiddleSums() (wMid, piMid float64) {
	return h.wTot - h.wA - h.wC, h.piTot - h.piA - h.piC
}

// Words returns the memory footprint in 64-bit words (w and π arrays
// plus the four position-index heaps).
func (h *Heap) Words() int { return 2*h.s + 4*h.s }

// indexedHeap is a binary heap of bucket ids with an id→position
// index, supporting key re-fix and removal by id in O(log s).
type indexedHeap struct {
	h   *Heap
	max bool
	ids []int
	pos []int // by bucket id; -1 when absent
}

func newIndexedHeap(h *Heap, max bool) *indexedHeap {
	pos := make([]int, h.s)
	for i := range pos {
		pos[i] = -1
	}
	return &indexedHeap{h: h, max: max, pos: pos}
}

func (q *indexedHeap) len() int { return len(q.ids) }

func (q *indexedHeap) top() int { return q.ids[0] }

// before reports whether id x should be above id y in this heap.
func (q *indexedHeap) before(x, y int) bool {
	if q.max {
		return q.h.less(y, x)
	}
	return q.h.less(x, y)
}

func (q *indexedHeap) push(id int) {
	q.ids = append(q.ids, id)
	q.pos[id] = len(q.ids) - 1
	q.siftUp(len(q.ids) - 1)
}

func (q *indexedHeap) remove(id int) {
	i := q.pos[id]
	if i < 0 {
		panic("biasheap: removing id not in heap")
	}
	last := len(q.ids) - 1
	q.swap(i, last)
	q.ids = q.ids[:last]
	q.pos[id] = -1
	if i < last {
		q.siftDown(q.siftUp(i))
	}
}

// fix restores the heap property after id's key changed; returns
// silently if id is not in this heap.
func (q *indexedHeap) fix(id int) {
	i := q.pos[id]
	if i < 0 {
		panic("biasheap: fixing id not in heap")
	}
	q.siftDown(q.siftUp(i))
}

func (q *indexedHeap) swap(i, j int) {
	q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
	q.pos[q.ids[i]] = i
	q.pos[q.ids[j]] = j
}

func (q *indexedHeap) siftUp(i int) int {
	for i > 0 {
		p := (i - 1) / 2
		if !q.before(q.ids[i], q.ids[p]) {
			break
		}
		q.swap(i, p)
		i = p
	}
	return i
}

func (q *indexedHeap) siftDown(i int) {
	n := len(q.ids)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.before(q.ids[l], q.ids[best]) {
			best = l
		}
		if r < n && q.before(q.ids[r], q.ids[best]) {
			best = r
		}
		if best == i {
			return
		}
		q.swap(i, best)
		i = best
	}
}
