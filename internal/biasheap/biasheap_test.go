package biasheap

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refMiddle computes the middle-section sums by sorting, as the ground
// truth for the heap's incremental maintenance. It uses the same
// (key, id) total order as the heap.
func refMiddle(w, pi []float64, topSize, botSize int) (wMid, piMid float64) {
	s := len(w)
	ids := make([]int, s)
	for i := range ids {
		ids[i] = i
	}
	key := func(i int) float64 {
		if pi[i] == 0 {
			return 0
		}
		return w[i] / pi[i]
	}
	sort.Slice(ids, func(a, b int) bool {
		ka, kb := key(ids[a]), key(ids[b])
		if ka != kb {
			return ka < kb
		}
		return ids[a] < ids[b]
	})
	for _, id := range ids[botSize : s-topSize] {
		wMid += w[id]
		piMid += pi[id]
	}
	return
}

func uniformPi(s int, v float64) []float64 {
	pi := make([]float64, s)
	for i := range pi {
		pi[i] = v
	}
	return pi
}

func TestNewValidation(t *testing.T) {
	for _, c := range []struct {
		s, mid int
	}{{0, 1}, {4, 0}, {4, 5}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(s=%d, mid=%d) should panic", c.s, c.mid)
				}
			}()
			New(uniformPi(c.s, 1), c.mid)
		}()
	}
}

func TestUpdateOutOfRangePanics(t *testing.T) {
	h := New(uniformPi(8, 1), 4)
	for _, id := range []int{-1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Update(%d) should panic", id)
				}
			}()
			h.Update(id, 1)
		}()
	}
}

func TestBiasSimple(t *testing.T) {
	// 8 buckets, uniform pi=10, mid=4: top 2 and bottom 2 excluded.
	h := New(uniformPi(8, 10), 4)
	// Give two buckets huge mass (outliers up) and two negative mass
	// (outliers down); the rest get mass 100 each (avg 10 per coord).
	h.Update(0, 1e6)
	h.Update(1, -1e6)
	for id := 2; id < 8; id++ {
		h.Update(id, 100)
	}
	// One more top and one more bottom fall out of the middle; the
	// middle 4 all carry w=100, pi=10 → bias 10.
	if got := h.Bias(); math.Abs(got-10) > 1e-9 {
		t.Errorf("Bias = %f, want 10", got)
	}
}

func TestBiasMatchesReferenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		s := 4 + r.Intn(60)
		mid := 1 + r.Intn(s)
		pi := make([]float64, s)
		for i := range pi {
			pi[i] = float64(1 + r.Intn(20))
		}
		h := New(pi, mid)
		topSize := (s - mid) / 2
		botSize := (s - mid) - topSize
		w := make([]float64, s)
		for step := 0; step < 500; step++ {
			id := r.Intn(s)
			delta := float64(r.Intn(200) - 100)
			h.Update(id, delta)
			w[id] += delta
			if step%37 == 0 || step == 499 {
				wantW, wantPi := refMiddle(w, pi, topSize, botSize)
				gotW, gotPi := h.MiddleSums()
				if math.Abs(gotW-wantW) > 1e-6 || math.Abs(gotPi-wantPi) > 1e-6 {
					t.Fatalf("trial %d step %d (s=%d mid=%d): middle sums (%f,%f), want (%f,%f)",
						trial, step, s, mid, gotW, gotPi, wantW, wantPi)
				}
			}
		}
	}
}

// Property: heap middle sums always equal the sort reference, for any
// random update schedule, including negative and repeated updates.
func TestBiasHeapReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := 4 + r.Intn(30)
		mid := 1 + r.Intn(s)
		pi := make([]float64, s)
		for i := range pi {
			pi[i] = float64(r.Intn(5)) // includes zero-π buckets
		}
		// Ensure at least one positive π so Bias is defined.
		pi[r.Intn(s)] = 3
		h := New(pi, mid)
		topSize := (s - mid) / 2
		botSize := (s - mid) - topSize
		w := make([]float64, s)
		for step := 0; step < 200; step++ {
			// Only buckets with π > 0 can receive coordinates.
			id := r.Intn(s)
			if pi[id] == 0 {
				continue
			}
			delta := r.NormFloat64() * 50
			h.Update(id, delta)
			w[id] += delta
		}
		wantW, wantPi := refMiddle(w, pi, topSize, botSize)
		gotW, gotPi := h.MiddleSums()
		return math.Abs(gotW-wantW) < 1e-6 && math.Abs(gotPi-wantPi) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMidEqualsSAveragesEverything(t *testing.T) {
	// mid == s means no exclusion: bias is the global average.
	h := New(uniformPi(6, 5), 6)
	h.Update(0, 300)
	h.Update(5, 30)
	want := 330.0 / 30.0
	if got := h.Bias(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Bias = %f, want %f", got, want)
	}
}

func TestBiasDegenerateDenominator(t *testing.T) {
	// All π mass in the single top/bottom-excluded buckets: with s=3,
	// mid=1, top and bottom each exclude one bucket. Put all π in the
	// excluded ones.
	pi := []float64{10, 0, 10}
	h := New(pi, 1)
	h.Update(0, -50) // key -5: sorts to the bottom section
	h.Update(2, 100) // key 10: sorts to the top section
	// Middle bucket (π=0, key 0) carries no coordinates → fall back to
	// the global average 50/20.
	if got, want := h.Bias(), 2.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Bias = %f, want %f", got, want)
	}
}

func TestBiasEmptyHeapZero(t *testing.T) {
	h := New([]float64{0, 0}, 1)
	if h.Bias() != 0 {
		t.Error("Bias of all-zero-π heap should be 0")
	}
}

// The motivating scenario: most coordinates near a common bias, a few
// outliers; the Bias-Heap estimate must land near the true bias while
// the plain average is dragged away.
func TestBiasRobustToOutliers(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const s, mid = 64, 32
	const n = 10000
	pi := make([]float64, s)
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		b := r.Intn(s)
		assign[i] = b
		pi[b]++
	}
	h := New(pi, mid)
	const bias = 100.0
	var total float64
	for i := 0; i < n; i++ {
		v := bias + r.NormFloat64()*15
		if i < 5 { // five enormous outliers
			v = 1e7
		}
		h.Update(assign[i], v)
		total += v
	}
	got := h.Bias()
	if math.Abs(got-bias) > 10 {
		t.Errorf("Bias = %f, want within 10 of %f", got, bias)
	}
	avg := total / n
	if math.Abs(avg-bias) < math.Abs(got-bias) {
		t.Errorf("plain average %f should be worse than heap bias %f", avg, got)
	}
}

func TestWords(t *testing.T) {
	h := New(uniformPi(16, 1), 8)
	if h.Words() != 96 {
		t.Errorf("Words = %d, want 96", h.Words())
	}
}

func BenchmarkUpdate(b *testing.B) {
	const s = 4096
	pi := uniformPi(s, 100)
	h := New(pi, s/2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Update(i&(s-1), float64(i%13)-6)
	}
}

func BenchmarkBiasQuery(b *testing.B) {
	const s = 4096
	h := New(uniformPi(s, 100), s/2)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		h.Update(r.Intn(s), r.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Bias()
	}
}
