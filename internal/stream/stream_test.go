package stream

import (
	"math/rand"
	"testing"
)

func TestSliceSourceReplay(t *testing.T) {
	us := []Update{{1, 2}, {3, -4}, {1, 1}}
	src := NewSliceSource(us)
	if src.Len() != 3 {
		t.Fatalf("Len = %d", src.Len())
	}
	var got []Update
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, u)
	}
	if len(got) != 3 || got[1] != us[1] {
		t.Fatalf("replay mismatch: %v", got)
	}
	// Exhausted source stays exhausted until Reset.
	if _, ok := src.Next(); ok {
		t.Error("exhausted source yielded an update")
	}
	src.Reset()
	if u, ok := src.Next(); !ok || u != us[0] {
		t.Error("Reset did not rewind")
	}
}

func TestUnitSource(t *testing.T) {
	src := NewUnitSource([]int{5, 5, 2})
	sum := map[int]float64{}
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if u.Delta != 1 {
			t.Fatalf("unit source delta %f", u.Delta)
		}
		sum[u.I] += u.Delta
	}
	if sum[5] != 2 || sum[2] != 1 {
		t.Fatalf("wrong accumulation %v", sum)
	}
	if src.Len() != 3 {
		t.Errorf("Len = %d", src.Len())
	}
}

func TestExactAccumulates(t *testing.T) {
	e := NewExact(10)
	e.Update(3, 5)
	e.Update(3, -2)
	if e.Query(3) != 3 {
		t.Errorf("Query(3) = %f", e.Query(3))
	}
	if e.Dim() != 10 || e.Words() != 10 {
		t.Error("Dim/Words wrong")
	}
	if e.Vector()[3] != 3 {
		t.Error("Vector not live")
	}
}

func TestDriveFeedsEverything(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	items := make([]int, 5000)
	for i := range items {
		items[i] = r.Intn(100)
	}
	src := NewUnitSource(items)
	e := NewExact(100)
	st := Drive(e, src)
	if st.Updates != 5000 {
		t.Fatalf("Updates = %d", st.Updates)
	}
	if st.NsPerUpdate <= 0 {
		t.Error("NsPerUpdate should be positive")
	}
	var total float64
	for i := 0; i < 100; i++ {
		total += e.Query(i)
	}
	if total != 5000 {
		t.Errorf("total mass %f, want 5000", total)
	}
	// Drive resets, so a second pass doubles everything.
	Drive(e, src)
	if e.Query(items[0]) < 2 {
		t.Error("second Drive should have replayed the stream")
	}
}

func TestMeasureQueries(t *testing.T) {
	e := NewExact(50)
	e.Update(7, 9)
	st := MeasureQueries(e, []int{7, 7, 7, 0})
	if st.Queries != 4 || st.NsPerQuery < 0 {
		t.Errorf("bad stats %+v", st)
	}
	empty := MeasureQueries(e, nil)
	if empty.Queries != 0 || empty.NsPerQuery != 0 {
		t.Errorf("empty query stats %+v", empty)
	}
}
