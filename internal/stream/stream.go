// Package stream provides the streaming execution model of §1: a
// sequence of (coordinate, delta) updates applied online to one or
// more sketches, with per-update and per-query timing instrumentation
// used by the Figure 6 experiment (Hudong update/query time plots).
package stream

import (
	"fmt"
	"time"

	"repro/internal/sketch"
)

// Update is one stream element: x[I] += Delta. The classical insert-
// only model of [1] has Delta = 1; the turnstile model allows any
// sign.
type Update struct {
	I     int
	Delta float64
}

// Source yields stream updates until exhaustion.
type Source interface {
	// Next returns the next update; ok is false at end of stream.
	Next() (u Update, ok bool)
	// Reset rewinds the source so another algorithm can replay the
	// identical stream.
	Reset()
}

// SliceSource replays a fixed update slice.
type SliceSource struct {
	updates []Update
	pos     int
}

// NewSliceSource wraps a pre-materialized stream.
func NewSliceSource(us []Update) *SliceSource { return &SliceSource{updates: us} }

// Next implements Source.
func (s *SliceSource) Next() (Update, bool) {
	if s.pos >= len(s.updates) {
		return Update{}, false
	}
	u := s.updates[s.pos]
	s.pos++
	return u, true
}

// Reset implements Source.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the stream length.
func (s *SliceSource) Len() int { return len(s.updates) }

// UnitSource adapts a slice of coordinate indexes into unit-increment
// updates (the item-arrival model of [1]).
type UnitSource struct {
	items []int
	pos   int
}

// NewUnitSource wraps an item sequence.
func NewUnitSource(items []int) *UnitSource { return &UnitSource{items: items} }

// Next implements Source.
func (s *UnitSource) Next() (Update, bool) {
	if s.pos >= len(s.items) {
		return Update{}, false
	}
	u := Update{I: s.items[s.pos], Delta: 1}
	s.pos++
	return u, true
}

// Reset implements Source.
func (s *UnitSource) Reset() { s.pos = 0 }

// Len returns the stream length.
func (s *UnitSource) Len() int { return len(s.items) }

// Exact is the ground-truth "sketch": the full frequency vector. It is
// used to score streaming recoveries and as the trivial baseline.
type Exact struct {
	x []float64
}

// NewExact creates a ground-truth accumulator of dimension n.
func NewExact(n int) *Exact { return &Exact{x: make([]float64, n)} }

// Update implements sketch.Sketch.
func (e *Exact) Update(i int, delta float64) { e.x[i] += delta }

// UpdateBatch implements sketch.BatchUpdater: x[idx[j]] += deltas[j]
// for every j. The whole batch is validated before any counter moves,
// matching the all-or-nothing contract of the hashed sketches.
func (e *Exact) UpdateBatch(idx []int, deltas []float64) {
	if len(idx) != len(deltas) {
		panic(fmt.Sprintf("stream: batch index count %d != delta count %d", len(idx), len(deltas)))
	}
	for _, i := range idx {
		if i < 0 || i >= len(e.x) {
			panic(fmt.Sprintf("stream: index %d out of range [0,%d)", i, len(e.x)))
		}
	}
	for j, i := range idx {
		e.x[i] += deltas[j]
	}
}

// Query implements sketch.Sketch.
func (e *Exact) Query(i int) float64 { return e.x[i] }

// QueryBatch implements sketch.BatchQuerier: out[j] = x[idx[j]] for
// every j, after validating the whole batch. Trivially bit-identical
// to the element-wise Query loop.
func (e *Exact) QueryBatch(idx []int, out []float64) {
	if len(idx) != len(out) {
		panic(fmt.Sprintf("stream: batch index count %d != output count %d", len(idx), len(out)))
	}
	for _, i := range idx {
		if i < 0 || i >= len(e.x) {
			panic(fmt.Sprintf("stream: index %d out of range [0,%d)", i, len(e.x)))
		}
	}
	for j, i := range idx {
		out[j] = e.x[i]
	}
}

// Dim implements sketch.Sketch.
func (e *Exact) Dim() int { return len(e.x) }

// Words implements sketch.Sketch.
func (e *Exact) Words() int { return len(e.x) }

// Vector returns the accumulated vector (not a copy).
func (e *Exact) Vector() []float64 { return e.x }

// DriveStats reports the cost of feeding a stream into a sketch.
type DriveStats struct {
	Updates     int
	Elapsed     time.Duration
	NsPerUpdate float64
}

// Drive replays src into sk, timing the whole pass.
func Drive(sk sketch.Sketch, src Source) DriveStats {
	src.Reset()
	var n int
	start := time.Now()
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		sk.Update(u.I, u.Delta)
		n++
	}
	el := time.Since(start)
	st := DriveStats{Updates: n, Elapsed: el}
	if n > 0 {
		st.NsPerUpdate = float64(el.Nanoseconds()) / float64(n)
	}
	return st
}

// QueryStats reports the cost of a batch of point queries.
type QueryStats struct {
	Queries    int
	Elapsed    time.Duration
	NsPerQuery float64
}

// MeasureQueries times point queries for every index in idxs.
func MeasureQueries(sk sketch.Sketch, idxs []int) QueryStats {
	start := time.Now()
	var sink float64
	for _, i := range idxs {
		sink += sk.Query(i)
	}
	el := time.Since(start)
	_ = sink
	st := QueryStats{Queries: len(idxs), Elapsed: el}
	if len(idxs) > 0 {
		st.NsPerQuery = float64(el.Nanoseconds()) / float64(len(idxs))
	}
	return st
}
