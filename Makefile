GO ?= go

.PHONY: build test race lint bench-json serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/concurrent/... ./internal/window/... ./internal/codec/... ./internal/counterbraids/... ./internal/server/... ./internal/distributed/...

# serve-smoke is the end-to-end sketchd drill: build the real binary,
# boot it on an ephemeral port with a checkpoint directory, ingest and
# query over TCP, kill -TERM it mid-ingest, and assert a clean drain
# (exit 0, final checkpoint) plus a bit-identical restart.
serve-smoke:
	$(GO) test -run TestServeSmokeProcess -v -count=1 ./internal/server

# lint mirrors CI's lint job: go vet, then the repo's own sketchlint
# multichecker through the vet -vettool protocol (lock/defer pairing,
# the //sketch:hotpath zero-allocation contract, bounded decode makes,
# typed boundary errors). staticcheck and govulncheck run when
# installed; CI installs pinned versions (see .github/workflows/ci.yml)
# so a local skip never hides a finding for long.
lint:
	$(GO) vet ./...
	$(GO) vet -vettool="$$($(GO) run ./cmd/sketchlint -print-path)" ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipped (CI runs it pinned)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipped (CI runs it pinned)"; fi

# Regenerate the checked-in benchmark baseline.
bench-json:
	$(GO) run ./cmd/benchjson
