package repro

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/registry"
	"repro/internal/sketchio"
)

// Marshal serializes s in the self-describing wire format: a header
// carrying the algorithm name, shape, and seed, then the sketch state.
// Unmarshal on the receiving side rebuilds the hash functions from the
// header (the paper's shared-randomness protocol, §5.5 footnote 4) and
// restores the state, so sketches travel over any byte transport.
//
// Every registry algorithm serializes, including the non-linear
// conservative-update sketches (save/restore is local persistence and
// needs no linearity); only Exact does not, returning
// ErrNotSerializable.
func Marshal(s Sketch) ([]byte, error) {
	var buf bytes.Buffer
	if err := MarshalTo(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// MarshalTo is Marshal writing to w.
func MarshalTo(w io.Writer, s Sketch) error {
	h, ok := s.(baser)
	if !ok {
		return fmt.Errorf("repro: %T was not built by repro.New", s)
	}
	b := h.base()
	if _, err := registry.State(b.inner); err != nil {
		return fmt.Errorf("%w: %s", ErrNotSerializable, b.entry.Name)
	}
	return sketchio.Save(w, b.desc, b.inner)
}

// Unmarshal reconstructs a sketch serialized by Marshal. The result
// carries the original algorithm, shape, and seed, so it merges with
// sketches from the same New configuration.
func Unmarshal(data []byte) (Sketch, error) {
	return UnmarshalFrom(bytes.NewReader(data))
}

// UnmarshalFrom is Unmarshal reading from r. Headers are validated
// before any allocation they imply, so hostile bytes error out instead
// of exhausting memory.
func UnmarshalFrom(r io.Reader) (Sketch, error) {
	inner, desc, err := sketchio.Load(r)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		// Load already resolved the name; this is unreachable short of
		// a registry bug.
		return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, desc.Algo)
	}
	desc.Algo = e.Name
	return wrap(e, inner, desc), nil
}
