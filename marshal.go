package repro

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/registry"
)

// Encode writes s to w in wire format v2: a self-describing container
// carrying the algorithm name, shape, and seed, then the sketch state.
// Decode on the receiving side rebuilds the hash functions from the
// descriptor (the paper's shared-randomness protocol, §5.5 footnote 4)
// and restores the state, so sketches travel over any byte transport.
//
// Every registry algorithm serializes, including the non-linear
// conservative-update sketches (save/restore is local persistence and
// needs no linearity); only Exact does not, returning
// ErrNotSerializable.
func Encode(w io.Writer, s Sketch) error {
	h, ok := s.(baser)
	if !ok {
		return fmt.Errorf("%w: %T", ErrForeignSketch, s)
	}
	b := h.base()
	if _, err := registry.State(b.inner); err != nil {
		return fmt.Errorf("%w: %s", ErrNotSerializable, b.entry.Name)
	}
	return codec.EncodeSketch(w, b.desc, b.inner)
}

// Decode reads one sketch from r — wire format v2, or the legacy v1
// format for payloads written by older builds — and reconstructs it
// via the algorithm registry. The result carries the original
// algorithm, shape, and seed, so it merges with sketches from the same
// New configuration. Bytes after the sketch's container are left
// unread (containers compose on a stream); use Unmarshal to insist a
// buffer holds exactly one payload.
//
// Checkpoint containers (Sharded, Windowed, Range) are not single
// sketches: Decode rejects them with an error naming what the
// container holds; restore those with RestoreSharded, RestoreWindowed,
// or RestoreRange.
func Decode(r io.Reader) (Sketch, error) {
	inner, desc, err := codec.DecodeSketch(r)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		// DecodeSketch already resolved the name; this is unreachable
		// short of a registry bug.
		return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, desc.Algo)
	}
	desc.Algo = e.Name
	return wrap(e, inner, desc), nil
}

// Marshal is Encode into a fresh byte slice.
func Marshal(s Sketch) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal reconstructs a sketch from a buffer holding exactly one
// Marshal payload (v2, or legacy v1). Unlike the stream-oriented
// Decode, it rejects trailing bytes after the payload with
// ErrTrailingData: a buffer that parses but keeps going is corrupt —
// or an attacker smuggling data past a validator — not a valid sketch.
func Unmarshal(data []byte) (Sketch, error) {
	r := bytes.NewReader(data)
	sk, err := Decode(r)
	if err != nil {
		return nil, err
	}
	if r.Len() > 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after a %d-byte payload",
			ErrTrailingData, r.Len(), len(data)-r.Len())
	}
	return sk, nil
}

// MarshalTo is Encode under its historical name.
func MarshalTo(w io.Writer, s Sketch) error { return Encode(w, s) }

// UnmarshalFrom is Decode under its historical name.
func UnmarshalFrom(r io.Reader) (Sketch, error) { return Decode(r) }
