package repro

import (
	"repro/internal/registry"
	"repro/internal/sketch"
)

// Hashing names the hash family a sketch's rows draw from. Select one
// at construction with WithHashing; the family is part of a sketch's
// identity — it is recorded in checkpoints, and merges require both
// sides to use the same family under the same seed.
type Hashing = sketch.HashKind

// The two hash families.
const (
	// HashPairwise is the default: the Carter–Wegman pairwise family
	// over the Mersenne prime 2^61−1, the construction the paper's
	// theorems assume. Bit-identical to every prior release — a sketch
	// built without WithHashing behaves exactly as before.
	HashPairwise = sketch.HashPairwise
	// HashTabulation is simple tabulation hashing (Pǎtraşcu–Thorup):
	// 8 lookup tables of 256 words per function (~16 KiB each, ~2 KiB
	// for a sign function), 3-wise independent, and substantially
	// faster per element because the Mersenne reduction's hardware
	// division is replaced by table lookups and a multiply-shift range
	// reduction. Estimates differ from the pairwise family's (different
	// randomness, same accuracy bounds).
	HashTabulation = sketch.HashTabulation
)

// ErrHashUnsupported is returned by New (and the codec restore paths)
// for an algorithm/hashing pair that does not exist — the bias-aware
// S/R schemes pin the paper's pairwise construction. Hashings lists
// the valid pairs.
var ErrHashUnsupported = sketch.ErrHashUnsupported

// Hashings returns the hash families the named algorithm supports (nil
// for unknown names). Every algorithm supports HashPairwise; the table
// sketches (countmin, countmedian, countsketch, cmcu, cmlcu,
// dengrafiei) also support HashTabulation. The bias-aware core
// algorithms and the related-work baselines are pairwise-only.
func Hashings(algo string) []Hashing {
	e, ok := registry.Lookup(algo)
	if !ok {
		return nil
	}
	hs := []Hashing{HashPairwise}
	if e.Tabulation {
		hs = append(hs, HashTabulation)
	}
	return hs
}

// HashingOf reports which hash family s draws from. Foreign Sketch
// implementations report HashPairwise.
func HashingOf(s Sketch) Hashing {
	b, ok := s.(baser)
	if !ok {
		return HashPairwise
	}
	return b.base().desc.Hash
}
