package repro_test

import (
	"errors"
	"math"
	"testing"

	"repro"
)

// monitorStreams builds deterministic per-site streams with integer
// deltas (so distributed sums are exact) and a skew: site 0 is hot.
func monitorStreams(sites, perSite, dim int) [][]repro.SiteUpdate {
	streams := make([][]repro.SiteUpdate, sites)
	for p := 0; p < sites; p++ {
		n := perSite
		if p == 0 {
			n *= 4
		}
		us := make([]repro.SiteUpdate, n)
		for u := range us {
			us[u] = repro.SiteUpdate{I: (p*131 + u*17) % dim, Delta: float64(1 + (p+u)%5)}
		}
		streams[p] = us
	}
	return streams
}

// The facade contract: Monitor's coordinator answers bit-identically
// to a single sketch of the same configuration fed every update —
// delta or full-state shipping, with churn, observed per round.
func TestMonitorBitIdenticalToSingleSketch(t *testing.T) {
	const dim, sites = 900, 7
	streams := monitorStreams(sites, 300, dim)
	opts := []repro.Option{repro.WithDim(dim), repro.WithWords(32), repro.WithDepth(2), repro.WithSeed(3)}

	single, err := repro.New("l2sr", opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, us := range streams {
		for _, u := range us {
			single.Update(u.I, u.Delta)
		}
	}

	for _, full := range []bool{false, true} {
		cfg := repro.MonitorConfig{
			SyncEvery: 100, FanIn: 3, Shards: 4, FullState: full,
			CheckpointEvery: 2,
			Restarts:        []repro.MonitorRestart{{Round: 3, Site: 1}},
		}
		rounds := 0
		coord, rep, err := repro.Monitor("l2sr", cfg, streams, func(round int, c repro.Sketch) {
			rounds++
			if round != rounds {
				t.Fatalf("onSync round %d out of order", round)
			}
			if c.Algo() != "l2sr" || c.Dim() != dim {
				t.Fatalf("onSync coordinator is %s/%d", c.Algo(), c.Dim())
			}
		}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < dim; i += 13 {
			if a, b := coord.Query(i), single.Query(i); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("full=%v: Query(%d) = %v, single sketch says %v", full, i, a, b)
			}
		}
		if rep.Rounds != rounds || len(rep.PerRound) != rounds {
			t.Fatalf("report rounds %d / ledger %d, onSync saw %d", rep.Rounds, len(rep.PerRound), rounds)
		}
		if rep.Restarts != 1 {
			t.Fatalf("report restarts = %d", rep.Restarts)
		}
		if rep.BudgetWordsPerRound != sites*rep.SketchWords {
			t.Fatalf("budget %d != sites %d × sketch %d", rep.BudgetWordsPerRound, sites, rep.SketchWords)
		}
		var bytesSum, wordsSum int
		for _, r := range rep.PerRound {
			bytesSum += r.CommBytes
			wordsSum += r.CommWords
		}
		if bytesSum != rep.CommBytes || wordsSum != rep.CommWords {
			t.Fatalf("ledger sums (%d,%d) disagree with totals (%d,%d)",
				bytesSum, wordsSum, rep.CommBytes, rep.CommWords)
		}
	}
}

// Zero config is runnable: defaults fill in, sites come from the
// stream count.
func TestMonitorZeroConfigDefaults(t *testing.T) {
	streams := monitorStreams(3, 50, 200)
	coord, rep, err := repro.Monitor("countmin", repro.MonitorConfig{}, streams, nil,
		repro.WithDim(200), repro.WithWords(16), repro.WithDepth(3), repro.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 1 { // 450 updates max per site < DefaultMonitorSyncEvery
		t.Fatalf("rounds = %d, want 1 with the default sync interval", rep.Rounds)
	}
	single, err := repro.New("countmin",
		repro.WithDim(200), repro.WithWords(16), repro.WithDepth(3), repro.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, us := range streams {
		for _, u := range us {
			single.Update(u.I, u.Delta)
		}
	}
	for i := 0; i < 200; i += 7 {
		if a, b := coord.Query(i), single.Query(i); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("Query(%d) = %v, want %v", i, a, b)
		}
	}
}

// Facade error mapping: every failure surfaces as one of repro's own
// typed errors, never an internal sentinel.
func TestMonitorErrors(t *testing.T) {
	streams := monitorStreams(2, 10, 100)
	base := []repro.Option{repro.WithDim(100), repro.WithWords(8), repro.WithDepth(2)}

	if _, _, err := repro.Monitor("no-such-algo", repro.MonitorConfig{}, streams, nil, base...); !errors.Is(err, repro.ErrUnknownAlgorithm) {
		t.Fatalf("unknown algo err = %v", err)
	}
	if _, _, err := repro.Monitor("cmcu", repro.MonitorConfig{}, streams, nil, base...); !errors.Is(err, repro.ErrNotLinear) {
		t.Fatalf("non-linear algo err = %v", err)
	}
	if _, _, err := repro.Monitor("l2sr", repro.MonitorConfig{FanIn: 1}, streams, nil, base...); !errors.Is(err, repro.ErrInvalidOption) {
		t.Fatalf("fan-in 1 err = %v", err)
	}
	if _, _, err := repro.Monitor("l2sr", repro.MonitorConfig{Restarts: []repro.MonitorRestart{{Round: 1, Site: 99}}}, streams, nil, base...); !errors.Is(err, repro.ErrInvalidOption) {
		t.Fatalf("out-of-range restart err = %v", err)
	}
	if _, _, err := repro.Monitor("l2sr", repro.MonitorConfig{}, streams, nil,
		repro.WithDim(100), repro.WithWords(8), repro.WithDepth(2), repro.WithBackend(repro.BackendCompressed)); !errors.Is(err, repro.ErrInvalidOption) {
		t.Fatalf("non-dense backend err = %v", err)
	}
	if _, _, err := repro.Monitor("l2sr", repro.MonitorConfig{}, streams, nil, repro.WithWords(-1)); !errors.Is(err, repro.ErrInvalidOption) {
		t.Fatalf("bad option err = %v", err)
	}
}

// Delta shipping through the facade costs less than the full-state
// baseline on a skewed workload, and the report's budget line matches
// what full-state shipping actually spends.
func TestMonitorDeltaCheaperThanFullState(t *testing.T) {
	const dim, sites = 600, 12
	streams := make([][]repro.SiteUpdate, sites)
	for p := 0; p < sites; p++ {
		n := 20
		if p < 2 {
			n = 800 // two hot sites dominate; cold sites go quiet early
		}
		us := make([]repro.SiteUpdate, n)
		for u := range us {
			us[u] = repro.SiteUpdate{I: (p + u*sites) % dim, Delta: 1}
		}
		streams[p] = us
	}
	cfg := repro.MonitorConfig{SyncEvery: 50, FanIn: 3, Shards: 4}
	_, dRep, err := repro.Monitor("l2sr", cfg, streams, nil,
		repro.WithDim(dim), repro.WithWords(16), repro.WithDepth(1), repro.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg.FullState = true
	_, fRep, err := repro.Monitor("l2sr", cfg, streams, nil,
		repro.WithDim(dim), repro.WithWords(16), repro.WithDepth(1), repro.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if dRep.CommBytes >= fRep.CommBytes || dRep.CommWords >= fRep.CommWords {
		t.Fatalf("delta (%d B, %d w) not cheaper than full state (%d B, %d w)",
			dRep.CommBytes, dRep.CommWords, fRep.CommBytes, fRep.CommWords)
	}
	for _, r := range fRep.PerRound {
		if r.CommWords < fRep.BudgetWordsPerRound && r.ActiveSites == sites {
			t.Fatalf("full-state round %d shipped %d words, below the %d budget",
				r.Round, r.CommWords, fRep.BudgetWordsPerRound)
		}
	}
}
