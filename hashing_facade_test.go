package repro_test

// Facade-level coverage for the hash-family and tiled-plane surface:
// WithHashing validation, Hashings listings, cross-configuration
// equivalences (tiled ≡ dense bit for bit, batch ≡ element-wise under
// tabulation), and checkpoint round-trips that must carry the family
// through every container — single sketches, mmap files, Sharded,
// Windowed, and Monitor.

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro"
)

const (
	hfDim   = 20000
	hfWords = 256
	hfDepth = 7
)

func hfOpts(extra ...repro.Option) []repro.Option {
	return append([]repro.Option{
		repro.WithDim(hfDim), repro.WithWords(hfWords),
		repro.WithDepth(hfDepth), repro.WithSeed(99),
	}, extra...)
}

// tabulationAlgos are the table sketches that accept WithHashing
// (everything in the registry except the bias-aware S/R schemes and
// the sample-based baselines).
var tabulationAlgos = []string{
	"countmin", "countmedian", "countsketch", "cmcu", "cmlcu", "dengrafiei",
}

func TestHashingsListings(t *testing.T) {
	if got := repro.Hashings("no-such-algo"); got != nil {
		t.Errorf("Hashings(unknown) = %v, want nil", got)
	}
	for _, algo := range tabulationAlgos {
		want := []repro.Hashing{repro.HashPairwise, repro.HashTabulation}
		got := repro.Hashings(algo)
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("Hashings(%s) = %v, want %v", algo, got, want)
		}
	}
	for _, algo := range []string{"l1sr", "l2sr", "l1mean", "l2mean"} {
		got := repro.Hashings(algo)
		if len(got) != 1 || got[0] != repro.HashPairwise {
			t.Errorf("Hashings(%s) = %v, want [pairwise]", algo, got)
		}
	}
}

func TestWithHashingValidation(t *testing.T) {
	// An out-of-range kind is a malformed option, not a capability
	// mismatch.
	if _, err := repro.New("countmin", hfOpts(repro.WithHashing(repro.Hashing(42)))...); !errors.Is(err, repro.ErrInvalidOption) {
		t.Errorf("New(countmin, hashing=42): got %v, want ErrInvalidOption", err)
	}
	// A valid kind an algorithm does not support is the typed
	// capability error, so callers can branch on it.
	for _, algo := range []string{"l1sr", "l2mean"} {
		if _, err := repro.New(algo, hfOpts(repro.WithHashing(repro.HashTabulation))...); !errors.Is(err, repro.ErrHashUnsupported) {
			t.Errorf("New(%s, tabulation): got %v, want ErrHashUnsupported", algo, err)
		}
	}
	// HashingOf reports what the sketch was built with.
	s := mustNew(t, "countmin", hfOpts(repro.WithHashing(repro.HashTabulation))...)
	if h := repro.HashingOf(s); h != repro.HashTabulation {
		t.Errorf("HashingOf = %v, want tabulation", h)
	}
	if h := repro.HashingOf(mustNew(t, "countmin", hfOpts()...)); h != repro.HashPairwise {
		t.Errorf("HashingOf(default) = %v, want pairwise", h)
	}
}

// The tiled plane is a layout change only: every query answer must
// match the dense plane bit for bit, under both hash families.
func TestTiledPlaneMatchesDense(t *testing.T) {
	for _, algo := range []string{"countmin", "countmedian", "countsketch", "dengrafiei"} {
		for _, h := range repro.Hashings(algo) {
			dense := mustNew(t, algo, hfOpts(repro.WithHashing(h))...)
			tiled := mustNew(t, algo, hfOpts(repro.WithHashing(h), repro.WithBackend(repro.BackendTiled))...)
			fill(dense, 30000, 5)
			fill(tiled, 30000, 5)
			for i := 0; i < hfDim; i += 173 {
				if d, g := dense.Query(i), tiled.Query(i); d != g {
					t.Fatalf("%s/%v: tiled diverges from dense at %d: %v vs %v", algo, h, i, d, g)
				}
			}
		}
	}
}

// Under tabulation the batched kernels must agree exactly with the
// element-wise path — same sketch state, same answers.
func TestTabulationBatchMatchesElementwise(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	idx := make([]int, 4096)
	deltas := make([]float64, len(idx))
	for j := range idx {
		idx[j] = r.Intn(hfDim)
		deltas[j] = float64(1 + r.Intn(5))
	}
	for _, algo := range tabulationAlgos {
		one := mustNew(t, algo, hfOpts(repro.WithHashing(repro.HashTabulation))...)
		two := mustNew(t, algo, hfOpts(repro.WithHashing(repro.HashTabulation))...)
		for j := range idx {
			one.Update(idx[j], deltas[j])
		}
		if err := repro.UpdateBatch(two, idx, deltas); err != nil {
			t.Fatalf("%s: UpdateBatch: %v", algo, err)
		}
		out := make([]float64, len(idx))
		if err := repro.QueryBatch(two, idx, out); err != nil {
			t.Fatalf("%s: QueryBatch: %v", algo, err)
		}
		for j, i := range idx {
			if e := one.Query(i); e != out[j] {
				t.Fatalf("%s: batch path diverges at %d: element-wise %v, batch %v", algo, i, e, out[j])
			}
		}
	}
}

// A tabulation checkpoint must round-trip through every serialization
// path with its family — and its answers — intact.
func TestTabulationCheckpointRoundTrip(t *testing.T) {
	for _, algo := range tabulationAlgos {
		orig := mustNew(t, algo, hfOpts(repro.WithHashing(repro.HashTabulation))...)
		fill(orig, 30000, 3)

		data, err := repro.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", algo, err)
		}
		loaded, err := repro.Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: Unmarshal: %v", algo, err)
		}
		if h := repro.HashingOf(loaded); h != repro.HashTabulation {
			t.Fatalf("%s: family lost in round-trip: %v", algo, h)
		}
		for i := 0; i < hfDim; i += 97 {
			if a, b := orig.Query(i), loaded.Query(i); a != b {
				t.Fatalf("%s: answers diverge after round-trip at %d: %v vs %v", algo, i, a, b)
			}
		}

		// Mmap restore path: the mapped replica serves the same answers.
		path := filepath.Join(t.TempDir(), algo+".sk")
		if err := repro.WriteSketchFile(path, orig); err != nil {
			t.Fatalf("%s: WriteSketchFile: %v", algo, err)
		}
		mm, closeMM, err := repro.OpenMmap(path)
		if err != nil {
			t.Fatalf("%s: OpenMmap: %v", algo, err)
		}
		if h := repro.HashingOf(mm); h != repro.HashTabulation {
			t.Errorf("%s: mmap replica lost the family: %v", algo, h)
		}
		for i := 0; i < hfDim; i += 97 {
			if a, b := orig.Query(i), mm.Query(i); a != b {
				t.Fatalf("%s: mmap replica diverges at %d: %v vs %v", algo, i, a, b)
			}
		}
		if err := closeMM(); err != nil {
			t.Fatalf("%s: close mmap: %v", algo, err)
		}
	}
}

// Sharded and Windowed containers carry the family through their own
// checkpoint formats.
func TestShardedWindowedTabulationCheckpoint(t *testing.T) {
	opts := hfOpts(repro.WithHashing(repro.HashTabulation))

	sh, err := repro.NewSharded(4, "countmin", opts...)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	r := rand.New(rand.NewSource(21))
	for u := 0; u < 20000; u++ {
		sh.Update(u%4, r.Intn(hfDim), float64(1+r.Intn(5)))
	}
	var buf bytes.Buffer
	if err := sh.Checkpoint(&buf); err != nil {
		t.Fatalf("Sharded.Checkpoint: %v", err)
	}
	sh2, err := repro.RestoreSharded(&buf)
	if err != nil {
		t.Fatalf("RestoreSharded: %v", err)
	}
	for i := 0; i < hfDim; i += 311 {
		a, err := sh.Query(i)
		if err != nil {
			t.Fatalf("Sharded.Query: %v", err)
		}
		b, err := sh2.Query(i)
		if err != nil {
			t.Fatalf("restored Sharded.Query: %v", err)
		}
		if a != b {
			t.Fatalf("sharded restore diverges at %d: %v vs %v", i, a, b)
		}
	}

	w, err := repro.NewWindowed(3, "countsketch", opts...)
	if err != nil {
		t.Fatalf("NewWindowed: %v", err)
	}
	for u := 0; u < 9000; u++ {
		if u%3000 == 0 && u > 0 {
			if err := w.Advance(1); err != nil {
				t.Fatalf("Advance: %v", err)
			}
		}
		if err := w.Update(0, r.Intn(hfDim), 1); err != nil {
			t.Fatalf("Windowed.Update: %v", err)
		}
	}
	buf.Reset()
	if err := w.Checkpoint(&buf); err != nil {
		t.Fatalf("Windowed.Checkpoint: %v", err)
	}
	w2, err := repro.RestoreWindowed(&buf)
	if err != nil {
		t.Fatalf("RestoreWindowed: %v", err)
	}
	for i := 0; i < hfDim; i += 311 {
		a, err := w.Query(i)
		if err != nil {
			t.Fatalf("Windowed.Query: %v", err)
		}
		b, err := w2.Query(i)
		if err != nil {
			t.Fatalf("restored Windowed.Query: %v", err)
		}
		if a != b {
			t.Fatalf("windowed restore diverges at %d: %v vs %v", i, a, b)
		}
	}
}

// The monitoring fabric ships deltas between replicas built from the
// same descriptor, so a tabulation coordinator must stay bit-identical
// to a single tabulation sketch fed every update.
func TestMonitorTabulation(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	streams := make([][]repro.SiteUpdate, 3)
	ref := mustNew(t, "countmin", hfOpts(repro.WithHashing(repro.HashTabulation))...)
	for p := range streams {
		for u := 0; u < 4000; u++ {
			i, d := r.Intn(hfDim), float64(1+r.Intn(5))
			streams[p] = append(streams[p], repro.SiteUpdate{I: i, Delta: d})
			ref.Update(i, d)
		}
	}
	coord, _, err := repro.Monitor("countmin", repro.MonitorConfig{}, streams, nil,
		hfOpts(repro.WithHashing(repro.HashTabulation))...)
	if err != nil {
		t.Fatalf("Monitor: %v", err)
	}
	if h := repro.HashingOf(coord); h != repro.HashTabulation {
		t.Errorf("coordinator lost the family: %v", h)
	}
	for i := 0; i < hfDim; i += 173 {
		if a, b := ref.Query(i), coord.Query(i); a != b {
			t.Fatalf("coordinator diverges from reference at %d: %v vs %v", i, a, b)
		}
	}
}
