package repro_test

// Golden wire-format vectors: one checked-in payload per serializable
// algorithm, produced by a fixed construction and update stream. Any
// change to the wire format — header layout, cell encoding, estimator
// state framing — shows up as a byte diff against testdata/wire/
// instead of a silent compatibility break. After an *intentional*
// format change, regenerate with
//
//	go test -run TestGoldenWireFormat -update-golden .
//
// and review the diff like any other.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/wire golden payloads instead of comparing against them")

// goldenSketch builds the fixed sketch behind <algo>.golden: shape and
// stream are frozen — changing them invalidates every golden file.
func goldenSketch(t testing.TB, algo string) repro.Sketch {
	t.Helper()
	sk, err := repro.New(algo,
		repro.WithDim(512), repro.WithWords(32), repro.WithDepth(4), repro.WithSeed(7))
	if err != nil {
		t.Fatalf("%s: New: %v", algo, err)
	}
	// Deterministic insert-only stream (no RNG: golden bytes must not
	// depend on math/rand internals).
	for u := 0; u < 4096; u++ {
		sk.Update((u*u+29)%512, float64(1+u%9))
	}
	return sk
}

func TestGoldenWireFormat(t *testing.T) {
	for _, algo := range serializableAlgos {
		t.Run(algo, func(t *testing.T) {
			data, err := repro.Marshal(goldenSketch(t, algo))
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			path := filepath.Join("testdata", "wire", algo+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("wire format changed: Marshal output differs from %s "+
					"(%d vs %d bytes, first diff at offset %d); if intentional, "+
					"regenerate with -update-golden and bump the format magic",
					path, len(data), len(want), firstDiff(data, want))
			}
		})
	}
}

// Golden payloads must also still load and answer queries like a
// freshly built twin — the cross-version compatibility contract, not
// just byte stability.
func TestGoldenWireFormatLoads(t *testing.T) {
	for _, algo := range serializableAlgos {
		t.Run(algo, func(t *testing.T) {
			path := filepath.Join("testdata", "wire", algo+".golden")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			loaded, err := repro.Unmarshal(data)
			if err != nil {
				t.Fatalf("golden payload does not load: %v", err)
			}
			ref := goldenSketch(t, algo)
			for i := 0; i < 512; i += 11 {
				if a, b := ref.Query(i), loaded.Query(i); a != b {
					t.Fatalf("query %d: fresh %v, golden-loaded %v", i, a, b)
				}
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Guard against accidentally committing an -update-golden run that
// wrote nothing: every serializable algorithm must have a golden file.
func TestGoldenFilesComplete(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "wire"))
	if err != nil {
		t.Fatalf("testdata/wire unreadable (run with -update-golden to create): %v", err)
	}
	have := map[string]bool{}
	for _, e := range entries {
		have[e.Name()] = true
	}
	for _, algo := range serializableAlgos {
		if name := fmt.Sprintf("%s.golden", algo); !have[name] {
			t.Errorf("missing golden file %s", name)
		}
	}
}
