package repro_test

// Golden wire-format vectors, two generations:
//
//   - testdata/wire/<algo>.golden are *legacy v1* payloads, exactly
//     the bytes the pre-v2 Marshal produced. They freeze the v1 layout
//     (EncodeV1 must keep producing them) and prove the compatibility
//     contract: every one of them must keep decoding through the new
//     codec, forever.
//
//   - testdata/wire/v2/<algo>.golden are the v2 payloads Marshal
//     writes today, plus composite checkpoint vectors
//     (sharded/windowed/range.golden). Any change to the container
//     layout — kinds, section framing, metadata — shows up as a byte
//     diff instead of a silent compatibility break.
//
// After an *intentional* format change, regenerate with
//
//	go test -run TestGolden -update-golden .
//
// and review the diff like any other. v1 files must never change.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/bench"
	"repro/internal/codec"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/wire golden payloads instead of comparing against them")

// goldenShape is the frozen construction every golden file uses —
// changing it invalidates every golden file.
var goldenShape = codec.Desc{N: 512, S: 32, D: 4, Seed: 7}

// goldenSketch builds the fixed sketch behind <algo>.golden: shape and
// stream are frozen.
func goldenSketch(t testing.TB, algo string) repro.Sketch {
	t.Helper()
	sk, err := repro.New(algo,
		repro.WithDim(goldenShape.N), repro.WithWords(goldenShape.S),
		repro.WithDepth(goldenShape.D), repro.WithSeed(goldenShape.Seed))
	if err != nil {
		t.Fatalf("%s: New: %v", algo, err)
	}
	// Deterministic insert-only stream (no RNG: golden bytes must not
	// depend on math/rand internals).
	for u := 0; u < 4096; u++ {
		sk.Update((u*u+29)%512, float64(1+u%9))
	}
	return sk
}

// goldenV1Bytes regenerates the legacy payload for algo: the same
// state as goldenSketch, written by the frozen v1 encoder.
func goldenV1Bytes(t testing.TB, algo string) []byte {
	t.Helper()
	desc := goldenShape
	desc.Algo = algo
	inner := bench.Make(desc.Algo, desc.N, desc.S, desc.D, desc.Seed)
	for u := 0; u < 4096; u++ {
		inner.Update((u*u+29)%512, float64(1+u%9))
	}
	var buf bytes.Buffer
	if err := codec.EncodeV1(&buf, desc, inner); err != nil {
		t.Fatalf("%s: EncodeV1: %v", algo, err)
	}
	return buf.Bytes()
}

// checkGolden compares (or, with -update-golden, rewrites) one golden
// file.
func checkGolden(t *testing.T, path string, data []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("wire format changed: output differs from %s "+
			"(%d vs %d bytes, first diff at offset %d); if intentional, "+
			"regenerate with -update-golden and bump the format version",
			path, len(data), len(want), firstDiff(data, want))
	}
}

// The legacy v1 encoder must keep producing the checked-in v1 bytes —
// these files were written by the pre-v2 facade and must never change.
func TestGoldenWireFormatV1(t *testing.T) {
	for _, algo := range serializableAlgos {
		t.Run(algo, func(t *testing.T) {
			checkGolden(t, filepath.Join("testdata", "wire", algo+".golden"), goldenV1Bytes(t, algo))
		})
	}
}

// Marshal's v2 output is frozen per algorithm.
func TestGoldenWireFormatV2(t *testing.T) {
	for _, algo := range serializableAlgos {
		t.Run(algo, func(t *testing.T) {
			data, err := repro.Marshal(goldenSketch(t, algo))
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			checkGolden(t, filepath.Join("testdata", "wire", "v2", algo+".golden"), data)
		})
	}
}

// tabulationGoldenAlgos are the table sketches whose tabulation-family
// checkpoints are frozen as <algo>-tabulation.golden — the v2 vectors
// proving the optional hash-family byte's layout never drifts.
var tabulationGoldenAlgos = []string{"countmin", "countsketch"}

// goldenTabulationSketch is goldenSketch under the tabulation family.
func goldenTabulationSketch(t testing.TB, algo string) repro.Sketch {
	t.Helper()
	sk, err := repro.New(algo,
		repro.WithDim(goldenShape.N), repro.WithWords(goldenShape.S),
		repro.WithDepth(goldenShape.D), repro.WithSeed(goldenShape.Seed),
		repro.WithHashing(repro.HashTabulation))
	if err != nil {
		t.Fatalf("%s: New: %v", algo, err)
	}
	for u := 0; u < 4096; u++ {
		sk.Update((u*u+29)%512, float64(1+u%9))
	}
	return sk
}

// Tabulation-family v2 output is frozen too: the descriptor carries
// the extra hash-family byte, and the counters are the tabulation
// family's — a byte diff here means either the container layout or the
// tabulation hash construction changed.
func TestGoldenWireFormatV2Tabulation(t *testing.T) {
	for _, algo := range tabulationGoldenAlgos {
		t.Run(algo, func(t *testing.T) {
			data, err := repro.Marshal(goldenTabulationSketch(t, algo))
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			checkGolden(t, filepath.Join("testdata", "wire", "v2", algo+"-tabulation.golden"), data)
		})
	}
}

// Tabulation golden payloads must round-trip: load, report the
// tabulation family, and answer like a freshly built twin.
func TestGoldenWireFormatTabulationLoads(t *testing.T) {
	for _, algo := range tabulationGoldenAlgos {
		t.Run(algo, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", "wire", "v2", algo+"-tabulation.golden"))
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			loaded, err := repro.Unmarshal(data)
			if err != nil {
				t.Fatalf("golden payload does not load: %v", err)
			}
			if h := repro.HashingOf(loaded); h != repro.HashTabulation {
				t.Fatalf("loaded family = %v, want tabulation", h)
			}
			ref := goldenTabulationSketch(t, algo)
			for i := 0; i < 512; i += 11 {
				if a, b := ref.Query(i), loaded.Query(i); a != b {
					t.Fatalf("query %d: fresh %v, golden-loaded %v", i, a, b)
				}
			}
		})
	}
}

// goldenComposites builds the three frozen checkpoint vectors.
func goldenComposites(t testing.TB) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}

	sh, err := repro.NewSharded(3, "l2sr",
		repro.WithDim(256), repro.WithWords(16), repro.WithDepth(3), repro.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2000; u++ {
		sh.Update(u%3, (u*u+11)%256, float64(1+u%5))
	}
	var sb bytes.Buffer
	if err := sh.Checkpoint(&sb); err != nil {
		t.Fatal(err)
	}
	out["sharded.golden"] = sb.Bytes()

	w, err := repro.NewWindowed(2, "countmin",
		repro.WithDim(256), repro.WithWords(16), repro.WithDepth(3), repro.WithSeed(7),
		repro.WithPanes(4))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3000; u++ {
		if err := w.Update(u%2, (u*u+5)%256, float64(1+u%3)); err != nil {
			t.Fatal(err)
		}
		if u%800 == 799 {
			if err := w.Advance(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	var wb bytes.Buffer
	if err := w.Checkpoint(&wb); err != nil {
		t.Fatal(err)
	}
	out["windowed.golden"] = wb.Bytes()

	rs, err := repro.NewRange(200, func(level, size int, seed int64) repro.Sketch {
		if size <= 16 {
			return repro.Exact(size)
		}
		return repro.MustNew("countsketch",
			repro.WithDim(size), repro.WithWords(16), repro.WithDepth(3), repro.WithSeed(seed))
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2000; u++ {
		rs.Update((u*u+17)%200, float64(1+u%4))
	}
	var rb bytes.Buffer
	if err := rs.Checkpoint(&rb); err != nil {
		t.Fatal(err)
	}
	out["range.golden"] = rb.Bytes()
	return out
}

// Composite checkpoint layouts are frozen too.
func TestGoldenCheckpointFormats(t *testing.T) {
	for name, data := range goldenComposites(t) {
		t.Run(name, func(t *testing.T) {
			checkGolden(t, filepath.Join("testdata", "wire", "v2", name), data)
		})
	}
}

// Golden payloads of both versions must still load and answer queries
// like a freshly built twin — the cross-version compatibility
// contract, not just byte stability.
func TestGoldenWireFormatLoads(t *testing.T) {
	dirs := map[string]string{
		"v1": filepath.Join("testdata", "wire"),
		"v2": filepath.Join("testdata", "wire", "v2"),
	}
	for version, dir := range dirs {
		for _, algo := range serializableAlgos {
			t.Run(version+"/"+algo, func(t *testing.T) {
				data, err := os.ReadFile(filepath.Join(dir, algo+".golden"))
				if err != nil {
					t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
				}
				loaded, err := repro.Unmarshal(data)
				if err != nil {
					t.Fatalf("golden payload does not load: %v", err)
				}
				ref := goldenSketch(t, algo)
				for i := 0; i < 512; i += 11 {
					if a, b := ref.Query(i), loaded.Query(i); a != b {
						t.Fatalf("query %d: fresh %v, golden-loaded %v", i, a, b)
					}
				}
			})
		}
	}
}

// The composite golden vectors must restore into working structures.
func TestGoldenCheckpointsRestore(t *testing.T) {
	read := func(t *testing.T, name string) []byte {
		t.Helper()
		data, err := os.ReadFile(filepath.Join("testdata", "wire", "v2", name))
		if err != nil {
			t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
		}
		return data
	}
	t.Run("sharded", func(t *testing.T) {
		s, err := repro.RestoreSharded(bytes.NewReader(read(t, "sharded.golden")))
		if err != nil {
			t.Fatal(err)
		}
		if s.Algo() != "l2sr" || s.Shards() != 3 || s.Dim() != 256 {
			t.Fatalf("restored %s/%d/%d", s.Algo(), s.Shards(), s.Dim())
		}
		if _, err := s.Query(11); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("windowed", func(t *testing.T) {
		w, err := repro.RestoreWindowed(bytes.NewReader(read(t, "windowed.golden")))
		if err != nil {
			t.Fatal(err)
		}
		if w.Algo() != "countmin" || w.Panes() != 4 || w.Dim() != 256 {
			t.Fatalf("restored %s/%d/%d", w.Algo(), w.Panes(), w.Dim())
		}
		if _, err := w.Query(5); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("range", func(t *testing.T) {
		rs, err := repro.RestoreRange(bytes.NewReader(read(t, "range.golden")))
		if err != nil {
			t.Fatal(err)
		}
		if rs.Dim() != 200 {
			t.Fatalf("restored dim %d", rs.Dim())
		}
		if total := rs.Total(); total <= 0 {
			t.Fatalf("restored total %v", total)
		}
	})
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Guard against accidentally committing an -update-golden run that
// wrote nothing: every expected golden file must exist in both
// generations.
func TestGoldenFilesComplete(t *testing.T) {
	check := func(dir string, names []string) {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s unreadable (run with -update-golden to create): %v", dir, err)
		}
		have := map[string]bool{}
		for _, e := range entries {
			have[e.Name()] = true
		}
		for _, name := range names {
			if !have[name] {
				t.Errorf("missing golden file %s/%s", dir, name)
			}
		}
	}
	var algoFiles []string
	for _, algo := range serializableAlgos {
		algoFiles = append(algoFiles, fmt.Sprintf("%s.golden", algo))
	}
	check(filepath.Join("testdata", "wire"), algoFiles)
	v2Files := append(algoFiles, "sharded.golden", "windowed.golden", "range.golden")
	for _, algo := range tabulationGoldenAlgos {
		v2Files = append(v2Files, fmt.Sprintf("%s-tabulation.golden", algo))
	}
	check(filepath.Join("testdata", "wire", "v2"), v2Files)
}
