package repro

import (
	"fmt"
	"io"
	"time"

	"repro/internal/codec"
	"repro/internal/heavyhitter"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/window"
)

// Windowed is a sliding-window sketch: point queries cover only the
// last WithPanes panes of the stream, not all of it — the "recent
// frequencies" shape real monitoring traffic needs. Any linear
// algorithm from the registry works as the pane sketch; non-linear
// ones (cmcu, cmlcu) return ErrNotLinear, since expiring and summing
// panes is exactly a merge.
//
// Ingestion runs through a concurrent.Sharded open pane, so
// multi-goroutine writers are contention-free; closed panes are
// immutable; and reads are served from a cached merged replica of the
// live panes published through an atomic pointer — a query against a
// fresh window takes zero locks, the epoch/snapshot machinery of
// Sharded extended with a rotation generation.
//
// Rotation is either explicit (Advance) or clock-driven
// (WithPaneWidth, with WithClock injectable for tests): in the timed
// mode every update or query first folds in the panes the clock says
// have elapsed, so expired traffic disappears even from a write-idle
// window.
type Windowed struct {
	inner *window.Window[sketch.Sketch]
	entry *registry.Entry
	desc  codec.Desc
}

// NewWindowed builds a sliding-window sketch with the given
// writer-shard count; algo and opts are exactly New's, plus the window
// knobs WithPanes (window length, default DefaultPanes), WithPaneWidth
// (clock-driven rotation, default explicit-Advance), and WithClock.
func NewWindowed(shards int, algo string, opts ...Option) (*Windowed, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrInvalidOption, shards)
	}
	e, ok := registry.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("%w: %q (valid: %v)", ErrUnknownAlgorithm, algo, Algorithms())
	}
	if !e.Linear {
		return nil, fmt.Errorf("%w: %s", ErrNotLinear, e.Name)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.backend != BackendDense {
		return nil, fmt.Errorf("%w: WithBackend(%v) — sharded and windowed replicas are mutable merge targets, so they are dense-only", ErrInvalidOption, cfg.backend)
	}
	// Probe the constructor once so a parameter combination the
	// algorithm rejects surfaces here as an error, not as a panic from
	// the first pane rotation.
	if _, err := registry.SafeNew(e.Name, cfg.shape()); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	mk := func() sketch.Sketch { return e.MustNew(cfg.shape()) }
	inner, err := window.New(window.Config{
		Panes:  cfg.panes,
		Shards: shards,
		Width:  cfg.paneWidth,
		Now:    cfg.clock,
	}, mk, registry.Merge)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &Windowed{
		inner: inner,
		entry: e,
		desc:  codec.Desc{Algo: e.Name, N: cfg.dim, S: cfg.words, D: cfg.depth, Seed: cfg.seed, Hash: cfg.hash},
	}, nil
}

// Checkpoint writes the window's full state to w as a wire-format v2
// checkpoint container: the descriptor, the rotation state (pane
// count, clock-independent pane width, pane sequences), every closed
// pane, and the open pane's sharded replica set with its epochs —
// everything RestoreWindowed needs to answer Query/QueryBatch/TopK
// bit-identically after a restart. Safe under concurrent writers
// (rotation is held off, shard capture is per-shard-consistent); in
// clock-driven mode any due rotation is folded in first. Absolute pane
// boundaries are not part of the format: on restore the open pane's
// clock starts fresh, only the width survives.
func (w *Windowed) Checkpoint(wr io.Writer) error {
	if err := codec.EncodeWindowed(wr, w.desc, w.inner); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// RestoreWindowed reconstructs a Windowed from a Checkpoint stream:
// configuration (algorithm, shape, seed, panes, pane width, shard
// count) and state (closed panes, open pane, rotation sequence) all
// come from the wire. The restored window ingests, rotates, and
// checkpoints like the original.
//
// Of the options only WithClock is consulted — a checkpointed window
// carries its own shape, and in clock-driven mode the open pane's
// width timer restarts at restore time against the given clock
// (time.Now by default).
func RestoreWindowed(r io.Reader, opts ...Option) (*Windowed, error) {
	var cfg newConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.clockSet && cfg.clock == nil {
		return nil, fmt.Errorf("%w: WithClock must be non-nil", ErrInvalidOption)
	}
	inner, desc, err := codec.DecodeWindowed(r, cfg.clock)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, desc.Algo)
	}
	desc.Algo = e.Name
	return &Windowed{inner: inner, entry: e, desc: desc}, nil
}

// Advance rotates k panes: the open pane freezes, panes older than the
// window expire, and a fresh open pane starts absorbing writes.
// Advancing by the full window (k ≥ Panes) empties it. k must be
// positive. In clock-driven mode Advance is still allowed — it rotates
// relative to whatever pane is open.
func (w *Windowed) Advance(k int) error {
	if err := w.inner.Advance(k); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// Update applies x[i] += delta to the open pane, on the shard owning
// the caller's slot (Sharded.Update semantics: same slot serializes,
// different slots proceed in parallel).
func (w *Windowed) Update(slot, i int, delta float64) error {
	if err := w.inner.Update(slot, i, delta); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j to the open
// pane under a single shard-lock acquisition — the high-throughput
// ingestion path. A length mismatch returns an error before any update
// is applied.
func (w *Windowed) UpdateBatch(slot int, idx []int, deltas []float64) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("%w: %d indexes, %d deltas", ErrBadBatch, len(idx), len(deltas))
	}
	if err := w.inner.UpdateBatch(slot, idx, deltas); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// Query returns an estimate of x[i] counting only the live panes —
// the sliding-window frequency. Stale merged views are refreshed
// first; queries against a fresh view take zero locks.
func (w *Windowed) Query(i int) (float64, error) {
	v, err := w.inner.Query(i)
	if err != nil {
		return 0, fmt.Errorf("repro: %w", err)
	}
	return v, nil
}

// QueryBatch writes a live-pane estimate of x[idx[j]] into out[j] for
// every j, through the replica's native batched query path. A length
// mismatch returns an error before anything is written.
func (w *Windowed) QueryBatch(idx []int, out []float64) error {
	if len(idx) != len(out) {
		return fmt.Errorf("%w: %d indexes, %d outputs", ErrBadBatch, len(idx), len(out))
	}
	if err := w.inner.QueryBatch(idx, out); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// TopK returns the k coordinates deviating most from the bias estimate
// within the live panes, sorted by decreasing deviation — windowed
// deviation heavy hitters. ErrNoBias unless the algorithm is
// bias-aware.
func (w *Windowed) TopK(k int) ([]Deviator, error) {
	v, err := w.inner.View()
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	b, ok := v.Sketch().(heavyhitter.BiasedSketch)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoBias, w.entry.Name)
	}
	return heavyhitter.TopK(b, k), nil
}

// Algo returns the canonical algorithm name.
func (w *Windowed) Algo() string { return w.entry.Name }

// Dim returns the dimension of the summarized vector.
func (w *Windowed) Dim() int { return w.desc.N }

// Panes returns the configured window length in panes.
func (w *Windowed) Panes() int { return w.inner.Panes() }

// PaneWidth returns the pane duration (0 in explicit-Advance mode).
func (w *Windowed) PaneWidth() time.Duration { return w.inner.Width() }

// Live returns the number of panes currently holding data (open pane
// included): at most Panes, fewer when the stream is younger than the
// window or recent panes saw no writes.
func (w *Windowed) Live() int { return w.inner.Live() }

// Words returns the total live memory across the open pane's shards,
// the closed panes, and the cached closed-pane sum, in 64-bit words.
func (w *Windowed) Words() int { return w.inner.Words() }
