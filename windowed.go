package repro

import (
	"fmt"
	"time"

	"repro/internal/heavyhitter"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/window"
)

// Windowed is a sliding-window sketch: point queries cover only the
// last WithPanes panes of the stream, not all of it — the "recent
// frequencies" shape real monitoring traffic needs. Any linear
// algorithm from the registry works as the pane sketch; non-linear
// ones (cmcu, cmlcu) return ErrNotLinear, since expiring and summing
// panes is exactly a merge.
//
// Ingestion runs through a concurrent.Sharded open pane, so
// multi-goroutine writers are contention-free; closed panes are
// immutable; and reads are served from a cached merged replica of the
// live panes published through an atomic pointer — a query against a
// fresh window takes zero locks, the epoch/snapshot machinery of
// Sharded extended with a rotation generation.
//
// Rotation is either explicit (Advance) or clock-driven
// (WithPaneWidth, with WithClock injectable for tests): in the timed
// mode every update or query first folds in the panes the clock says
// have elapsed, so expired traffic disappears even from a write-idle
// window.
type Windowed struct {
	inner *window.Window[sketch.Sketch]
	entry *registry.Entry
	dim   int
}

// NewWindowed builds a sliding-window sketch with the given
// writer-shard count; algo and opts are exactly New's, plus the window
// knobs WithPanes (window length, default DefaultPanes), WithPaneWidth
// (clock-driven rotation, default explicit-Advance), and WithClock.
func NewWindowed(shards int, algo string, opts ...Option) (*Windowed, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrInvalidOption, shards)
	}
	e, ok := registry.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("%w: %q (valid: %v)", ErrUnknownAlgorithm, algo, Algorithms())
	}
	if !e.Linear {
		return nil, fmt.Errorf("%w: %s", ErrNotLinear, e.Name)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	// Probe the constructor once so a parameter combination the
	// algorithm rejects surfaces here as an error, not as a panic from
	// the first pane rotation.
	if _, err := registry.SafeNew(e.Name, cfg.dim, cfg.words, cfg.depth, cfg.seed); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	mk := func() sketch.Sketch { return e.New(cfg.dim, cfg.words, cfg.depth, cfg.seed) }
	inner, err := window.New(window.Config{
		Panes:  cfg.panes,
		Shards: shards,
		Width:  cfg.paneWidth,
		Now:    cfg.clock,
	}, mk, registry.Merge)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &Windowed{inner: inner, entry: e, dim: cfg.dim}, nil
}

// Advance rotates k panes: the open pane freezes, panes older than the
// window expire, and a fresh open pane starts absorbing writes.
// Advancing by the full window (k ≥ Panes) empties it. k must be
// positive. In clock-driven mode Advance is still allowed — it rotates
// relative to whatever pane is open.
func (w *Windowed) Advance(k int) error {
	if err := w.inner.Advance(k); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// Update applies x[i] += delta to the open pane, on the shard owning
// the caller's slot (Sharded.Update semantics: same slot serializes,
// different slots proceed in parallel).
func (w *Windowed) Update(slot, i int, delta float64) error {
	if err := w.inner.Update(slot, i, delta); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j to the open
// pane under a single shard-lock acquisition — the high-throughput
// ingestion path. A length mismatch returns an error before any update
// is applied.
func (w *Windowed) UpdateBatch(slot int, idx []int, deltas []float64) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("repro: batch index count %d != delta count %d", len(idx), len(deltas))
	}
	if err := w.inner.UpdateBatch(slot, idx, deltas); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// Query returns an estimate of x[i] counting only the live panes —
// the sliding-window frequency. Stale merged views are refreshed
// first; queries against a fresh view take zero locks.
func (w *Windowed) Query(i int) (float64, error) {
	v, err := w.inner.Query(i)
	if err != nil {
		return 0, fmt.Errorf("repro: %w", err)
	}
	return v, nil
}

// QueryBatch writes a live-pane estimate of x[idx[j]] into out[j] for
// every j, through the replica's native batched query path. A length
// mismatch returns an error before anything is written.
func (w *Windowed) QueryBatch(idx []int, out []float64) error {
	if len(idx) != len(out) {
		return fmt.Errorf("repro: batch index count %d != output count %d", len(idx), len(out))
	}
	if err := w.inner.QueryBatch(idx, out); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// TopK returns the k coordinates deviating most from the bias estimate
// within the live panes, sorted by decreasing deviation — windowed
// deviation heavy hitters. ErrNoBias unless the algorithm is
// bias-aware.
func (w *Windowed) TopK(k int) ([]Deviator, error) {
	v, err := w.inner.View()
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	b, ok := v.Sketch().(heavyhitter.BiasedSketch)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoBias, w.entry.Name)
	}
	return heavyhitter.TopK(b, k), nil
}

// Algo returns the canonical algorithm name.
func (w *Windowed) Algo() string { return w.entry.Name }

// Dim returns the dimension of the summarized vector.
func (w *Windowed) Dim() int { return w.dim }

// Panes returns the configured window length in panes.
func (w *Windowed) Panes() int { return w.inner.Panes() }

// PaneWidth returns the pane duration (0 in explicit-Advance mode).
func (w *Windowed) PaneWidth() time.Duration { return w.inner.Width() }

// Live returns the number of panes currently holding data (open pane
// included): at most Panes, fewer when the stream is younger than the
// window or recent panes saw no writes.
func (w *Windowed) Live() int { return w.inner.Live() }

// Words returns the total live memory across the open pane's shards,
// the closed panes, and the cached closed-pane sum, in 64-bit words.
func (w *Windowed) Words() int { return w.inner.Words() }
