package repro_test

// Fuzz layer for the composite wire formats: arbitrary bytes fed to
// every decode entry point — single-sketch Decode/Unmarshal and the
// three checkpoint restorers — must error or produce a working
// structure, never panic, and never allocate past what the input pays
// for (hostile length prefixes are the classic way in; the seeds
// include valid checkpoints of all three kinds so the fuzzer mutates
// deep structure, not just magics).

import (
	"bytes"
	"testing"

	"repro"
)

// tinyShape keeps fuzz-seed structures small so the fuzzer's
// throughput stays high.
func tinyShape() []repro.Option {
	return []repro.Option{
		repro.WithDim(64), repro.WithWords(8), repro.WithDepth(2), repro.WithSeed(3),
	}
}

func seedShardedBytes(f *testing.F) []byte {
	f.Helper()
	s, err := repro.NewSharded(2, "countmin", tinyShape()...)
	if err != nil {
		f.Fatal(err)
	}
	for u := 0; u < 200; u++ {
		s.Update(u%2, u%64, 1)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func seedWindowedBytes(f *testing.F) []byte {
	f.Helper()
	w, err := repro.NewWindowed(2, "l2sr", append(tinyShape(), repro.WithPanes(3))...)
	if err != nil {
		f.Fatal(err)
	}
	for u := 0; u < 300; u++ {
		if err := w.Update(u%2, u%64, 1); err != nil {
			f.Fatal(err)
		}
		if u%100 == 99 {
			if err := w.Advance(1); err != nil {
				f.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := w.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func seedRangeBytes(f *testing.F) []byte {
	f.Helper()
	rs, err := repro.NewRange(50, func(level, size int, seed int64) repro.Sketch {
		if size <= 8 {
			return repro.Exact(size)
		}
		return repro.MustNew("countmin",
			repro.WithDim(size), repro.WithWords(8), repro.WithDepth(2), repro.WithSeed(seed))
	}, 5)
	if err != nil {
		f.Fatal(err)
	}
	for u := 0; u < 200; u++ {
		rs.Update(u%50, 1)
	}
	var buf bytes.Buffer
	if err := rs.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode drives every composite decode path. Anything accepted
// must be alive enough to answer a query (or a range sum) without
// panicking.
func FuzzDecode(f *testing.F) {
	sharded := seedShardedBytes(f)
	windowed := seedWindowedBytes(f)
	ranged := seedRangeBytes(f)
	f.Add(sharded)
	f.Add(windowed)
	f.Add(ranged)
	// Truncations and flips push the fuzzer into section framing.
	f.Add(sharded[:len(sharded)/2])
	f.Add(windowed[:9])
	flip := append([]byte(nil), ranged...)
	flip[len(flip)/2] ^= 0xFF
	f.Add(flip)
	f.Add([]byte("BAS2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if sk, err := repro.Unmarshal(data); err == nil {
			_ = sk.Query(0)
		}
		if s, err := repro.RestoreSharded(bytes.NewReader(data)); err == nil {
			if _, err := s.Query(0); err != nil {
				t.Fatalf("restored sharded cannot query: %v", err)
			}
		}
		if w, err := repro.RestoreWindowed(bytes.NewReader(data)); err == nil {
			if _, err := w.Query(0); err != nil {
				t.Fatalf("restored windowed cannot query: %v", err)
			}
		}
		if rs, err := repro.RestoreRange(bytes.NewReader(data)); err == nil {
			_ = rs.RangeSum(0, rs.Dim())
		}
	})
}
