package repro

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/codec"
	"repro/internal/rangequery"
	"repro/internal/registry"
)

// LevelFactory builds the point sketch for one dyadic level of a
// RangeSketch; size is the level's dimension (≈ n/2^level) and seed is
// a per-level value derived from the RangeSketch seed. Returning a
// small-dimension Exact for coarse levels and a bias-aware sketch for
// fine ones is the standard engineering: spend words where the
// dimension is, not where the mass is.
type LevelFactory func(level, size int, seed int64) Sketch

// RangeSketch answers range sums and quantiles from a dyadic stack of
// point sketches — the statistical queries §1 lists beyond point
// query. One pass over the data, one structure, many query types.
type RangeSketch struct {
	inner *rangequery.Sketch
}

// MaxRangeDim bounds NewRange's dimension at the wire format's point-
// sketch ceiling (2^26): the level-0 sketch summarizes the full
// vector, so a dimension no point sketch can be built for must be
// rejected here — with an error, never a panic — before any level is
// allocated.
const MaxRangeDim = 1 << 26

// NewRange creates a range-query sketch over vectors of dimension n,
// building each dyadic level with f. seed derives the per-level seeds.
// n must be in [1, MaxRangeDim].
func NewRange(n int, f LevelFactory, seed int64) (*RangeSketch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: range dimension must be positive, got %d", ErrInvalidOption, n)
	}
	if n > MaxRangeDim {
		return nil, fmt.Errorf("%w: range dimension must be at most %d, got %d", ErrInvalidOption, MaxRangeDim, n)
	}
	var err error
	r := rand.New(rand.NewSource(seed))
	rs := &RangeSketch{}
	rs.inner = rangequery.New(n, func(level, size int, _ *rand.Rand) rangequery.PointSketch {
		if err != nil {
			// Construction already failed: stop calling the factory and
			// fill the remaining levels with zero-cost placeholders (the
			// whole structure is discarded below).
			return nullLevel{}
		}
		if sk := f(level, size, r.Int63()); sk != nil {
			return sk
		}
		err = fmt.Errorf("%w: level %d", ErrNilLevel, level)
		return nullLevel{}
	}, r)
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// nullLevel stands in for levels after the factory has failed, so
// NewRange allocates nothing for a structure it is about to discard.
type nullLevel struct{}

func (nullLevel) Update(int, float64) {}
func (nullLevel) Query(int) float64   { return 0 }
func (nullLevel) Words() int          { return 0 }

// Checkpoint writes the RangeSketch's full state to w as a wire-format
// v2 checkpoint container: the base dimension, then every dyadic
// level's sketch (descriptor plus state, finest first). Exact levels —
// the standard build spends exact counters on the small coarse levels
// — are carried as dense vectors. Every level must have been built by
// a factory returning repro sketches (repro.New, repro.Exact);
// checkpointing a stack with foreign level implementations errors.
func (s *RangeSketch) Checkpoint(w io.Writer) error {
	var levels []codec.Level
	err := s.inner.ForEachLevel(func(level, size int, sk rangequery.PointSketch) error {
		h, ok := sk.(baser)
		if !ok {
			return fmt.Errorf("%w: level %d sketch is %T", ErrForeignSketch, level, sk)
		}
		b := h.base()
		levels = append(levels, codec.Level{Desc: b.desc, Sk: b.inner})
		return nil
	})
	if err != nil {
		return err
	}
	if err := codec.EncodeRange(w, s.inner.Dim(), levels); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// RestoreRange reconstructs a RangeSketch from a Checkpoint stream:
// each level is rebuilt from its own descriptor through the registry
// and its state restored, then the dyadic stack is reassembled. The
// restored sketch answers RangeSum/PrefixSum/Total/Quantile
// bit-identically to the checkpointed original and keeps ingesting.
func RestoreRange(r io.Reader) (*RangeSketch, error) {
	n, levels, err := codec.DecodeRange(r)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	pts := make([]rangequery.PointSketch, len(levels))
	for i, l := range levels {
		e, ok := registry.Lookup(l.Desc.Algo)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, l.Desc.Algo)
		}
		desc := l.Desc
		desc.Algo = e.Name
		pts[i] = wrap(e, l.Sk, desc)
	}
	inner, err := rangequery.NewFromLevels(n, pts)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &RangeSketch{inner: inner}, nil
}

// Update applies x[i] += delta, propagating to every level.
func (s *RangeSketch) Update(i int, delta float64) { s.inner.Update(i, delta) }

// RangeSum estimates sum(x[lo:hi]) from O(log n) level queries.
func (s *RangeSketch) RangeSum(lo, hi int) float64 { return s.inner.RangeSum(lo, hi) }

// PrefixSum estimates sum(x[0:hi]).
func (s *RangeSketch) PrefixSum(hi int) float64 { return s.inner.PrefixSum(hi) }

// Total estimates the full vector mass.
func (s *RangeSketch) Total() float64 { return s.inner.Total() }

// Quantile returns the smallest index i with PrefixSum(i+1) ≥ q·Total.
func (s *RangeSketch) Quantile(q float64) int { return s.inner.Quantile(q) }

// Levels returns the number of dyadic levels.
func (s *RangeSketch) Levels() int { return s.inner.Levels() }

// Dim returns the base dimension n.
func (s *RangeSketch) Dim() int { return s.inner.Dim() }

// Words returns the total size across levels in 64-bit words.
func (s *RangeSketch) Words() int { return s.inner.Words() }
