// Package bench is the public face of the figure-regeneration harness
// behind cmd/biasrepro: one entry per figure of the paper's §5 (plus
// the prose-only comparisons), each producing printable tables. The
// types are aliases of the internal harness so external tooling can
// drive the same experiments without importing repro/internal/....
package bench

import "repro/internal/bench"

// Config scales and seeds a figure run.
type Config = bench.Config

// Table is one printable sub-figure: algorithms × sweep points.
type Table = bench.Table

// Figures maps figure number (1–9 from the paper, 10–13 for the
// prose-only comparisons) to its generator.
var Figures = bench.Figures
