// Wire-format benchmarks at the public-API level: single-sketch
// Encode/Decode and composite checkpoint/restore throughput in MB/s
// (b.SetBytes on the payload size), the serving-side cost of
// durability and site→coordinator shipping.
package bench_test

import (
	"bytes"
	"io"
	"testing"

	"repro"
)

const codecDim = 100_000

func codecSketch(b *testing.B, algo string) repro.Sketch {
	b.Helper()
	sk, err := repro.New(algo, repro.WithDim(codecDim), repro.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 200_000; u++ {
		sk.Update((u*u+13)%codecDim, float64(1+u%5))
	}
	return sk
}

func BenchmarkEncode(b *testing.B) {
	for _, algo := range []string{"countmin", "l2sr"} {
		b.Run(algo, func(b *testing.B) {
			sk := codecSketch(b, algo)
			data, err := repro.Marshal(sk)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := repro.Encode(io.Discard, sk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, algo := range []string{"countmin", "l2sr"} {
		b.Run(algo, func(b *testing.B) {
			data, err := repro.Marshal(codecSketch(b, algo))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := repro.Unmarshal(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCheckpointSharded(b *testing.B) {
	s, err := repro.NewSharded(4, "countmin", repro.WithDim(codecDim), repro.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 200_000; u++ {
		s.Update(u%4, (u*u+13)%codecDim, 1)
	}
	var size bytes.Buffer
	if err := s.Checkpoint(&size); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Checkpoint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestoreSharded(b *testing.B) {
	s, err := repro.NewSharded(4, "countmin", repro.WithDim(codecDim), repro.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 200_000; u++ {
		s.Update(u%4, (u*u+13)%codecDim, 1)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RestoreSharded(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointWindowed(b *testing.B) {
	w, err := repro.NewWindowed(2, "countmin",
		repro.WithDim(codecDim), repro.WithSeed(7), repro.WithPanes(6))
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 200_000; u++ {
		if err := w.Update(u%2, (u*u+13)%codecDim, 1); err != nil {
			b.Fatal(err)
		}
		if u%40_000 == 39_999 {
			if err := w.Advance(1); err != nil {
				b.Fatal(err)
			}
		}
	}
	var size bytes.Buffer
	if err := w.Checkpoint(&size); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Checkpoint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestoreWindowed(b *testing.B) {
	w, err := repro.NewWindowed(2, "countmin",
		repro.WithDim(codecDim), repro.WithSeed(7), repro.WithPanes(6))
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 200_000; u++ {
		if err := w.Update(u%2, (u*u+13)%codecDim, 1); err != nil {
			b.Fatal(err)
		}
		if u%40_000 == 39_999 {
			if err := w.Advance(1); err != nil {
				b.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := w.Checkpoint(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RestoreWindowed(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
