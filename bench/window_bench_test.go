// Sliding-window benchmarks at the public-API level: batched windowed
// ingestion (including the pane-rotation cost amortized over the
// stream) and windowed queries against a fresh cached view — the two
// hot paths of the monitoring workload. ns/op is per update / per
// query.
package bench_test

import (
	"testing"

	"repro"
)

func BenchmarkWindowedUpdateBatch(b *testing.B) {
	idx, ones := ingestStream()
	for _, algo := range ingestAlgos {
		b.Run(algo, func(b *testing.B) {
			w, err := repro.NewWindowed(1, algo, repro.WithDim(ingestN), repro.WithPanes(8))
			if err != nil {
				b.Fatal(err)
			}
			span := len(idx) - ingestBatchLen
			rotateEvery := 64 // batches per pane: rotation cost is amortized in
			b.ResetTimer()
			batch := 0
			for done := 0; done < b.N; done += ingestBatchLen {
				m := ingestBatchLen
				if rem := b.N - done; rem < m {
					m = rem
				}
				off := done % span
				if err := w.UpdateBatch(0, idx[off:off+m], ones[off:off+m]); err != nil {
					b.Fatal(err)
				}
				if batch++; batch%rotateEvery == 0 {
					if err := w.Advance(1); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkWindowedQueryBatch(b *testing.B) {
	idx, ones := ingestStream()
	for _, algo := range ingestAlgos {
		b.Run(algo, func(b *testing.B) {
			w, err := repro.NewWindowed(1, algo, repro.WithDim(ingestN), repro.WithPanes(8))
			if err != nil {
				b.Fatal(err)
			}
			for off := 0; off+ingestBatchLen <= len(idx); off += ingestBatchLen {
				if err := w.UpdateBatch(0, idx[off:off+ingestBatchLen], ones[off:off+ingestBatchLen]); err != nil {
					b.Fatal(err)
				}
				if off%(8*ingestBatchLen) == 0 {
					if err := w.Advance(1); err != nil {
						b.Fatal(err)
					}
				}
			}
			out := make([]float64, queryBatchLen)
			span := len(idx) - queryBatchLen
			b.ResetTimer()
			for done := 0; done < b.N; done += queryBatchLen {
				m := queryBatchLen
				if rem := b.N - done; rem < m {
					m = rem
				}
				off := done % span
				if err := w.QueryBatch(idx[off:off+m], out[:m]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
