// Counter-plane backend benchmarks at the public-API level: the cost
// of each storage choice on the three paths that matter — ingestion
// (dense vs compressed), serving (all three), and restore. The
// time-to-first-query benchmark is the mmap backend's reason to
// exist: opening a checkpoint by mmap is O(1) in the sketch size,
// while a full decode pays for every cell before the first answer.
package bench_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// backendShape matches the baseline shape (s=4096, d=9) so backend
// entries in BENCH_9.json are comparable with the per-algorithm paths.
func backendSketch(b *testing.B, be repro.Backend, feed int) repro.Sketch {
	b.Helper()
	sk, err := repro.New("countmin",
		repro.WithDim(1_000_000), repro.WithWords(4096), repro.WithDepth(9),
		repro.WithSeed(7), repro.WithBackend(be))
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < feed; u++ {
		sk.Update((u*u+13)%1_000_000, float64(1+u%5))
	}
	return sk
}

// BenchmarkBackendUpdate measures one element-wise update per op on
// the writable backends. The compressed plane pays the braid's hash
// cascade per add; the dense plane is the zero-alloc baseline; the
// tiled plane writes one tile column instead of d scattered rows.
func BenchmarkBackendUpdate(b *testing.B) {
	for _, be := range []repro.Backend{repro.BackendDense, repro.BackendCompressed, repro.BackendTiled} {
		b.Run(be.String(), func(b *testing.B) {
			sk := backendSketch(b, be, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Update((i*i+13)%1_000_000, float64(1+i%5))
			}
		})
	}
}

// BenchmarkBackendQuery measures one point query per op against a
// quiescent sketch on every backend. The compressed plane's decode is
// amortized across the run (it caches until the next write), which is
// exactly its serving model: decode once, answer many.
func BenchmarkBackendQuery(b *testing.B) {
	const feed = 100_000
	serve := func(b *testing.B, sk repro.Sketch) {
		sk.Query(0) // settle the decode-at-first-query cost outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sk.Query((i * 31) % 1_000_000)
		}
	}
	for _, be := range []repro.Backend{repro.BackendDense, repro.BackendCompressed, repro.BackendTiled} {
		b.Run(be.String(), func(b *testing.B) {
			serve(b, backendSketch(b, be, feed))
		})
	}
	b.Run(repro.BackendMmap.String(), func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "sk.bas2")
		if err := repro.WriteSketchFile(path, backendSketch(b, repro.BackendDense, feed)); err != nil {
			b.Fatal(err)
		}
		sk, closeMap, err := repro.OpenMmap(path)
		if err != nil {
			b.Fatal(err)
		}
		defer closeMap()
		serve(b, sk)
	})
}

// BenchmarkBackendRestore measures a full checkpoint restore onto each
// stream-restorable backend (mmap restores from files, not streams —
// see BenchmarkBackendTimeToFirstQuery). The compressed restore
// re-inserts every non-zero cell into the braid, trading restore time
// for resident size.
func BenchmarkBackendRestore(b *testing.B) {
	blob, err := repro.Marshal(backendSketch(b, repro.BackendDense, 100_000))
	if err != nil {
		b.Fatal(err)
	}
	for _, be := range []repro.Backend{repro.BackendDense, repro.BackendCompressed, repro.BackendTiled} {
		b.Run(be.String(), func(b *testing.B) {
			b.SetBytes(int64(len(blob)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := repro.DecodeWith(blob, be); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackendTimeToFirstQuery measures restart latency: from a
// checkpoint file on disk to the first answered query. The decode path
// reads and materializes every cell; the mmap path maps the file and
// faults in only the buckets the query touches.
func BenchmarkBackendTimeToFirstQuery(b *testing.B) {
	path := filepath.Join(b.TempDir(), "sk.bas2")
	if err := repro.WriteSketchFile(path, backendSketch(b, repro.BackendDense, 100_000)); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("decode", func(b *testing.B) {
		b.SetBytes(fi.Size())
		for i := 0; i < b.N; i++ {
			data, err := os.ReadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			sk, err := repro.Unmarshal(data)
			if err != nil {
				b.Fatal(err)
			}
			sk.Query(i % 1_000_000)
		}
	})
	b.Run("mmap", func(b *testing.B) {
		b.SetBytes(fi.Size())
		for i := 0; i < b.N; i++ {
			sk, closeMap, err := repro.OpenMmap(path)
			if err != nil {
				b.Fatal(err)
			}
			sk.Query(i % 1_000_000)
			if err := closeMap(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
