// Distributed-monitoring fabric benchmarks: one op is a complete
// continuous-monitoring run over a fixed skewed workload, and the
// number that matters is the custom comm-B/round metric — encoded
// frame bytes per synchronization round across every tree edge —
// reported for delta shipping against the full-state baseline the
// paper's sites × sketch-size budget describes.
package bench_test

import (
	"testing"

	"repro"
)

// monitorWorkload builds the benchmark's skewed site streams: a few
// hot sites dominate while the tail goes quiet after the first round,
// which is where delta shipping pulls away from the baseline.
func monitorWorkload(sites, dim int) [][]repro.SiteUpdate {
	streams := make([][]repro.SiteUpdate, sites)
	for p := 0; p < sites; p++ {
		n := 64
		if p%8 == 0 {
			n = 4096 // hot site
		}
		us := make([]repro.SiteUpdate, n)
		for u := range us {
			us[u] = repro.SiteUpdate{I: (p*7919 + u*131) % dim, Delta: float64(1 + u%3)}
		}
		streams[p] = us
	}
	return streams
}

func BenchmarkMonitorRound(b *testing.B) {
	const (
		sites = 64
		dim   = 50_000
	)
	streams := monitorWorkload(sites, dim)
	opts := []repro.Option{
		repro.WithDim(dim), repro.WithWords(512), repro.WithDepth(3), repro.WithSeed(7),
	}
	for _, mode := range []struct {
		name string
		full bool
	}{{"delta", false}, {"full", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := repro.MonitorConfig{
				SyncEvery: 512, FanIn: 4, Shards: 4, FullState: mode.full,
			}
			var rep repro.MonitorReport
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = repro.Monitor("l2sr", cfg, streams, nil, opts...)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if rep.Rounds == 0 {
				b.Fatal("no synchronization rounds ran")
			}
			b.ReportMetric(float64(rep.CommBytes)/float64(rep.Rounds), "comm-B/round")
			b.ReportMetric(float64(rep.CommWords)/float64(rep.Rounds), "comm-words/round")
		})
	}
}
