// Query benchmarks at the public-API level: the same coordinates flow
// through Sketch.Query, repro.QueryBatch, and snapshot reads of a
// Sharded, so the facade's batched read path is measured exactly as an
// external consumer would drive it. ns/op is per query for the facade
// pair; the parallel snapshot benchmark measures coordination-free
// concurrent readers against a published snapshot.
package bench_test

import (
	"math/rand"
	"testing"

	"repro"
)

const queryBatchLen = 1024

// servedSketch builds and populates a facade sketch for query
// benchmarks.
func servedSketch(b *testing.B, algo string) repro.Sketch {
	b.Helper()
	sk := repro.MustNew(algo, repro.WithDim(ingestN))
	idx, ones := ingestStream()
	for off := 0; off+queryBatchLen <= len(idx); off += queryBatchLen {
		if err := repro.UpdateBatch(sk, idx[off:off+queryBatchLen], ones[off:off+queryBatchLen]); err != nil {
			b.Fatal(err)
		}
	}
	return sk
}

func BenchmarkFacadeQuery(b *testing.B) {
	idx, _ := ingestStream()
	for _, algo := range ingestAlgos {
		b.Run(algo, func(b *testing.B) {
			sk := servedSketch(b, algo)
			mask := len(idx) - 1
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += sk.Query(idx[i&mask])
			}
			_ = sink
		})
	}
}

func BenchmarkFacadeQueryBatch(b *testing.B) {
	idx, _ := ingestStream()
	for _, algo := range ingestAlgos {
		b.Run(algo, func(b *testing.B) {
			sk := servedSketch(b, algo)
			out := make([]float64, queryBatchLen)
			span := len(idx) - queryBatchLen
			b.ResetTimer()
			for done := 0; done < b.N; done += queryBatchLen {
				m := queryBatchLen
				if rem := b.N - done; rem < m {
					m = rem
				}
				off := done % span
				if err := repro.QueryBatch(sk, idx[off:off+m], out[:m]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Parallel batched reads against one published snapshot: zero shard
// locks, zero refreshes inside the loop — the serving fast path under
// concurrent query bursts.
func BenchmarkSnapshotQueryBatchParallel(b *testing.B) {
	idx, ones := ingestStream()
	sh, err := repro.NewSharded(8, "countmin", repro.WithDim(ingestN))
	if err != nil {
		b.Fatal(err)
	}
	for off := 0; off+queryBatchLen <= len(idx); off += queryBatchLen {
		if err := sh.UpdateBatch(off, idx[off:off+queryBatchLen], ones[off:off+queryBatchLen]); err != nil {
			b.Fatal(err)
		}
	}
	snap, err := sh.Refresh()
	if err != nil {
		b.Fatal(err)
	}
	span := len(idx) - queryBatchLen
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		out := make([]float64, queryBatchLen)
		done := rand.Int() % span
		for pb.Next() {
			off := done % span
			if err := snap.QueryBatch(idx[off:off+queryBatchLen], out); err != nil {
				b.Fatal(err)
			}
			done += queryBatchLen
		}
	})
	b.ReportMetric(float64(queryBatchLen), "queries/op")
}
