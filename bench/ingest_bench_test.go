// Ingestion benchmarks at the public-API level: the same stream flows
// through Sketch.Update, repro.UpdateBatch, and Sharded.UpdateBatch,
// so the facade's batched path is measured exactly as an external
// consumer would drive it. ns/op is per update for the facade pair and
// per 1024-element batch for the parallel sharded benchmark.
package bench_test

import (
	"math/rand"
	"testing"

	"repro"
)

const (
	ingestN        = 1_000_000
	ingestBatchLen = 1024
)

var ingestAlgos = []string{"countmin", "l2sr"}

func ingestStream() (idx []int, ones []float64) {
	r := rand.New(rand.NewSource(88))
	idx = make([]int, 1<<16)
	ones = make([]float64, 1<<16)
	for j := range idx {
		idx[j] = r.Intn(ingestN)
		ones[j] = 1
	}
	return idx, ones
}

func BenchmarkFacadeUpdate(b *testing.B) {
	idx, ones := ingestStream()
	for _, algo := range ingestAlgos {
		b.Run(algo, func(b *testing.B) {
			sk := repro.MustNew(algo, repro.WithDim(ingestN))
			mask := len(idx) - 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Update(idx[i&mask], ones[0])
			}
		})
	}
}

func BenchmarkFacadeUpdateBatch(b *testing.B) {
	idx, ones := ingestStream()
	for _, algo := range ingestAlgos {
		b.Run(algo, func(b *testing.B) {
			sk := repro.MustNew(algo, repro.WithDim(ingestN))
			span := len(idx) - ingestBatchLen
			b.ResetTimer()
			for done := 0; done < b.N; done += ingestBatchLen {
				m := ingestBatchLen
				if rem := b.N - done; rem < m {
					m = rem
				}
				off := done % span
				if err := repro.UpdateBatch(sk, idx[off:off+m], ones[off:off+m]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkShardedUpdateBatch(b *testing.B) {
	idx, ones := ingestStream()
	sh, err := repro.NewSharded(8, "countmin", repro.WithDim(ingestN))
	if err != nil {
		b.Fatal(err)
	}
	span := len(idx) - ingestBatchLen
	b.RunParallel(func(pb *testing.PB) {
		slot := rand.Int()
		done := 0
		for pb.Next() {
			off := done % span
			if err := sh.UpdateBatch(slot, idx[off:off+ingestBatchLen], ones[off:off+ingestBatchLen]); err != nil {
				b.Fatal(err)
			}
			done += ingestBatchLen
		}
	})
}
