package repro

import (
	"errors"
	"fmt"

	"repro/internal/codec"
	"repro/internal/distributed"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// This file is the facade over the continuous distributed-monitoring
// fabric (internal/distributed): t sites ingest local update streams,
// ship their sketches up a fan-in-k aggregation tree as delta frames —
// only the replica shards that changed since the last acknowledged
// hop — and the root serves the global sketch, bit-identical to a
// single sketch that saw every update. Sites can crash and rejoin from
// checkpoints mid-run; a rejoin resynchronizes its path to the root
// with one full-state frame.

// Monitoring defaults applied by Monitor when the corresponding
// MonitorConfig field is zero.
const (
	DefaultMonitorSyncEvery = 1024
	DefaultMonitorFanIn     = 4
	DefaultMonitorShards    = 4
)

// SiteUpdate is one element of a monitored site's local stream:
// x[I] += Delta.
type SiteUpdate struct {
	I     int
	Delta float64
}

// MonitorRestart is one churn event: before round Round ingests, site
// Site crashes and restarts from its last checkpoint, replaying its
// stream from the checkpointed position and rejoining the tree with a
// full-state frame.
type MonitorRestart struct {
	Round int // 1-based monitoring round the restart precedes
	Site  int
}

// MonitorConfig shapes a Monitor run. Zero values take the
// DefaultMonitor* constants (and Sites defaults to the number of
// streams), so the zero config is runnable.
type MonitorConfig struct {
	// Sites is the number of leaf sites; 0 means len(streams).
	Sites int
	// SyncEvery is the updates each site ingests between
	// synchronization rounds. Default DefaultMonitorSyncEvery.
	SyncEvery int
	// FanIn is the aggregation-tree branching factor (≥ 2). Default
	// DefaultMonitorFanIn.
	FanIn int
	// Shards is the per-site replica shard count; updates route to
	// shard key mod Shards, and delta frames carry only the shards
	// that changed. Default DefaultMonitorShards.
	Shards int
	// FullState ships every site's complete state every round instead
	// of deltas — the communication baseline the paper's sites ×
	// sketch-size budget describes.
	FullState bool
	// CheckpointEvery takes a durable site checkpoint every that many
	// rounds; 0 disables, so a restarted site replays its whole stream.
	CheckpointEvery int
	// Restarts is the churn schedule.
	Restarts []MonitorRestart
}

// MonitorRound is the communication ledger of one synchronization
// round.
type MonitorRound struct {
	Round        int
	CommBytes    int // encoded frame bytes across every tree edge
	CommWords    int // sketch words inside those frames
	DeltaEntries int // shard sections shipped in delta frames
	FullFrames   int // full-state frames (rejoins and FullState mode)
	ActiveSites  int // sites that ingested at least one update
}

// MonitorReport summarizes a Monitor run.
type MonitorReport struct {
	Rounds         int
	UpdatesApplied int
	CommWords      int
	CommBytes      int

	// SketchWords is the single-sketch size for the configuration, and
	// BudgetWordsPerRound the paper's theoretical per-round budget:
	// sites × sketch size (§5.5) — what full-state shipping costs.
	SketchWords         int
	BudgetWordsPerRound int

	Restarts int
	PerRound []MonitorRound
}

// Monitor runs the continuous-monitoring simulation: streams[p] is
// site p's local update sequence, algo and opts name the shared sketch
// configuration every site constructs (same linearity and
// serializability contract as Merge and Marshal — and dense-only, like
// NewSharded, since site replicas live behind the wire format).
// onSync, if non-nil, observes the coordinator's global sketch after
// every synchronization round.
//
// The returned sketch is the coordinator's final state; its answers
// are bit-identical to a single sketch of the same configuration fed
// every update, whatever the fan-in, shard count, shipping mode, or
// churn schedule.
func Monitor(
	algo string,
	cfg MonitorConfig,
	streams [][]SiteUpdate,
	onSync func(round int, coordinator Sketch),
	opts ...Option,
) (Sketch, MonitorReport, error) {
	e, ok := registry.Lookup(algo)
	if !ok {
		return nil, MonitorReport{}, fmt.Errorf("%w: %q (valid: %v)", ErrUnknownAlgorithm, algo, Algorithms())
	}
	nc, err := buildConfig(opts)
	if err != nil {
		return nil, MonitorReport{}, err
	}
	if nc.backend != BackendDense {
		return nil, MonitorReport{}, fmt.Errorf("%w: monitored sites are dense-only", ErrInvalidOption)
	}
	desc := codec.Desc{Algo: e.Name, N: nc.dim, S: nc.words, D: nc.depth, Seed: nc.seed, Hash: nc.hash}

	tc := distributed.TreeConfig{
		Sites:           cfg.Sites,
		SyncEvery:       cfg.SyncEvery,
		FanIn:           cfg.FanIn,
		Shards:          cfg.Shards,
		CheckpointEvery: cfg.CheckpointEvery,
	}
	if tc.Sites == 0 {
		tc.Sites = len(streams)
	}
	if tc.SyncEvery == 0 {
		tc.SyncEvery = DefaultMonitorSyncEvery
	}
	if tc.FanIn == 0 {
		tc.FanIn = DefaultMonitorFanIn
	}
	if tc.Shards == 0 {
		tc.Shards = DefaultMonitorShards
	}
	if cfg.FullState {
		tc.Mode = distributed.ShipFull
	}
	for _, r := range cfg.Restarts {
		tc.Restarts = append(tc.Restarts, distributed.Restart{Round: r.Round, Site: r.Site})
	}

	ss := make([][]stream.Update, len(streams))
	for p, us := range streams {
		converted := make([]stream.Update, len(us))
		for i, u := range us {
			converted[i] = stream.Update{I: u.I, Delta: u.Delta}
		}
		ss[p] = converted
	}

	coord, st, err := distributed.MonitorTree(tc, desc, ss, func(round int, c sketch.Sketch) {
		if onSync != nil {
			onSync(round, wrap(e, c, desc))
		}
	})
	if err != nil {
		return nil, MonitorReport{}, monitorError(err)
	}

	report := MonitorReport{
		Rounds:              st.Rounds,
		UpdatesApplied:      st.UpdatesApplied,
		CommWords:           st.CommWords,
		CommBytes:           st.CommBytes,
		SketchWords:         st.SketchWords,
		BudgetWordsPerRound: st.BudgetWordsPerRound,
		Restarts:            st.Restarts,
		PerRound:            make([]MonitorRound, len(st.PerRound)),
	}
	for i, r := range st.PerRound {
		report.PerRound[i] = MonitorRound{
			Round: r.Round, CommBytes: r.CommBytes, CommWords: r.CommWords,
			DeltaEntries: r.DeltaEntries, FullFrames: r.FullFrames, ActiveSites: r.ActiveSites,
		}
	}
	return wrap(e, coord, desc), report, nil
}

// monitorError maps the internal fabric's sentinels onto the facade's,
// so callers errors.Is against repro's exported errors only.
func monitorError(err error) error {
	switch {
	case errors.Is(err, distributed.ErrBadConfig),
		errors.Is(err, distributed.ErrNoSites):
		return fmt.Errorf("%w: %w", ErrInvalidOption, err)
	case errors.Is(err, distributed.ErrNotShippable):
		return fmt.Errorf("%w: %w", ErrNotLinear, err)
	case errors.Is(err, distributed.ErrUnknownAlgorithm):
		return fmt.Errorf("%w: %w", ErrUnknownAlgorithm, err)
	default:
		return fmt.Errorf("repro: monitoring: %w", err)
	}
}
