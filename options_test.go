package repro_test

// Table-driven validation of every functional option: zero, negative,
// and overflow values must be rejected with the typed ErrInvalidOption
// — never silently clamped — by every constructor that takes options.

import (
	"errors"
	"testing"
	"time"

	"repro"
)

func TestOptionValidation(t *testing.T) {
	valid := []repro.Option{
		repro.WithDim(1000), repro.WithWords(64), repro.WithDepth(5), repro.WithSeed(1),
	}
	cases := []struct {
		name string
		opts []repro.Option
	}{
		{"dim missing", []repro.Option{repro.WithWords(64)}},
		{"dim zero", append(valid[1:], repro.WithDim(0))},
		{"dim negative", append(valid[1:], repro.WithDim(-5))},
		{"dim overflow", append(valid[1:], repro.WithDim(1<<30))},
		{"words zero", append(valid, repro.WithWords(0))},
		{"words negative", append(valid, repro.WithWords(-64))},
		{"words overflow", append(valid, repro.WithWords(1<<30))},
		{"depth zero", append(valid, repro.WithDepth(0))},
		{"depth negative", append(valid, repro.WithDepth(-1))},
		{"depth overflow", append(valid, repro.WithDepth(1000))},
		{"words*depth overflow", append(valid, repro.WithWords(1<<22), repro.WithDepth(64))},
		{"seed negative", append(valid, repro.WithSeed(-1))},
		{"panes zero", append(valid, repro.WithPanes(0))},
		{"panes negative", append(valid, repro.WithPanes(-2))},
		{"panes overflow", append(valid, repro.WithPanes(repro.MaxPanes+1))},
		{"pane width negative", append(valid, repro.WithPaneWidth(-time.Second))},
		{"clock nil", append(valid, repro.WithClock(nil))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := repro.New("countmin", tc.opts...); !errors.Is(err, repro.ErrInvalidOption) {
				t.Errorf("New: got %v, want ErrInvalidOption", err)
			}
			if _, err := repro.NewSharded(2, "countmin", tc.opts...); !errors.Is(err, repro.ErrInvalidOption) {
				t.Errorf("NewSharded: got %v, want ErrInvalidOption", err)
			}
			if _, err := repro.NewWindowed(2, "countmin", tc.opts...); !errors.Is(err, repro.ErrInvalidOption) {
				t.Errorf("NewWindowed: got %v, want ErrInvalidOption", err)
			}
		})
	}
}

// Boundary values the wire format allows must construct — rejection is
// for invalid values only, not for unusual-but-legal ones.
func TestOptionBoundaryValuesConstruct(t *testing.T) {
	cases := []struct {
		name string
		opts []repro.Option
	}{
		{"minimum shape", []repro.Option{repro.WithDim(1), repro.WithWords(4), repro.WithDepth(1)}},
		{"depth ceiling", []repro.Option{repro.WithDim(100), repro.WithWords(16), repro.WithDepth(64)}},
		{"one pane", []repro.Option{repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3), repro.WithPanes(1)}},
		{"max panes", []repro.Option{repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3), repro.WithPanes(repro.MaxPanes)}},
		{"zero pane width", []repro.Option{repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3), repro.WithPaneWidth(0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := repro.New("countmin", tc.opts...); err != nil {
				t.Errorf("New: %v", err)
			}
		})
	}
}

// The sharded and windowed constructors validate their shard argument
// with the same typed error, and NewRange its dimension.
func TestConstructorArgumentValidation(t *testing.T) {
	opts := []repro.Option{repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3)}
	if _, err := repro.NewSharded(0, "countmin", opts...); !errors.Is(err, repro.ErrInvalidOption) {
		t.Errorf("NewSharded(0): got %v, want ErrInvalidOption", err)
	}
	if _, err := repro.NewSharded(-3, "countmin", opts...); !errors.Is(err, repro.ErrInvalidOption) {
		t.Errorf("NewSharded(-3): got %v, want ErrInvalidOption", err)
	}
	factory := func(_, size int, seed int64) repro.Sketch {
		return repro.MustNew("exact", repro.WithDim(size), repro.WithSeed(seed&(1<<62-1)))
	}
	for _, n := range []int{0, -1, repro.MaxRangeDim + 1} {
		if _, err := repro.NewRange(n, factory, 1); !errors.Is(err, repro.ErrInvalidOption) {
			t.Errorf("NewRange(%d): got %v, want ErrInvalidOption", n, err)
		}
	}
}
