package repro_test

// Public-API tests for the sliding-window layer: construction and
// option validation, live-pane recount equivalence across every linear
// registry algorithm, clock-driven expiry, windowed TopK, and a
// rotation race. Everything goes through the facade exactly as an
// external consumer would.

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro"
)

// windowableAlgos is every registry algorithm a Windowed accepts: the
// linear ones (pane expiry is a merge, so conservative update is out).
var windowableAlgos = []string{
	"l1sr", "l2sr", "l1mean", "l2mean", "countmin", "countmedian",
	"countsketch", "dengrafiei", "exact",
}

func TestNewWindowedValidation(t *testing.T) {
	opts := []repro.Option{repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3)}
	if _, err := repro.NewWindowed(0, "countmin", opts...); !errors.Is(err, repro.ErrInvalidOption) {
		t.Errorf("shards=0: got %v, want ErrInvalidOption", err)
	}
	if _, err := repro.NewWindowed(2, "no-such-algo", opts...); !errors.Is(err, repro.ErrUnknownAlgorithm) {
		t.Errorf("unknown algo: got %v, want ErrUnknownAlgorithm", err)
	}
	for _, algo := range []string{"cmcu", "cmlcu"} {
		if _, err := repro.NewWindowed(2, algo, opts...); !errors.Is(err, repro.ErrNotLinear) {
			t.Errorf("%s: got %v, want ErrNotLinear", algo, err)
		}
	}
	w, err := repro.NewWindowed(2, "countmin", append(opts, repro.WithPanes(5))...)
	if err != nil {
		t.Fatal(err)
	}
	if w.Algo() != "countmin" || w.Dim() != 100 || w.Panes() != 5 || w.Live() != 1 || w.PaneWidth() != 0 {
		t.Fatalf("accessors: %s/%d/%d/%d/%v", w.Algo(), w.Dim(), w.Panes(), w.Live(), w.PaneWidth())
	}
	if err := w.Advance(0); err == nil {
		t.Error("Advance(0) should fail")
	}
	if err := w.UpdateBatch(0, []int{1}, []float64{1, 2}); err == nil {
		t.Error("UpdateBatch length mismatch should fail")
	}
	if err := w.QueryBatch([]int{1}, make([]float64, 2)); err == nil {
		t.Error("QueryBatch length mismatch should fail")
	}
}

// Property: Windowed.Query ≡ brute-force recount over only the live
// panes, for every linear registry algorithm across random pane
// counts, shard counts, and advance schedules. A reference sketch with
// the same configuration and seed is fed exactly the live panes'
// updates; integer deltas keep the pane-merge arithmetic exact, so the
// comparison is bit-for-bit (the bias-aware sketches merge their
// estimator samples in pane order rather than stream order, which the
// tolerance absorbs).
func TestWindowedQueryMatchesLivePaneRecountProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		algo := windowableAlgos[r.Intn(len(windowableAlgos))]
		tol := 0.0
		switch algo {
		case "l1sr", "l2sr", "l1mean", "l2mean":
			tol = 1e-9
		}
		n := 64 + r.Intn(1000)
		panes := 1 + r.Intn(5)
		opts := []repro.Option{
			repro.WithDim(n), repro.WithWords(8 + r.Intn(64)),
			repro.WithDepth(1 + r.Intn(5)), repro.WithSeed(r.Int63()),
			repro.WithPanes(panes),
		}
		w, err := repro.NewWindowed(1+r.Intn(4), algo, opts...)
		if err != nil {
			t.Logf("%s: NewWindowed: %v", algo, err)
			return false
		}
		type upd struct {
			i int
			d float64
		}
		byPane := map[int][]upd{}
		cur := 0
		rounds := 2 + r.Intn(8)
		for round := 0; round < rounds; round++ {
			m := r.Intn(200)
			idx := make([]int, m)
			deltas := make([]float64, m)
			for j := range idx {
				idx[j] = r.Intn(n)
				deltas[j] = float64(1 + r.Intn(6))
				byPane[cur] = append(byPane[cur], upd{idx[j], deltas[j]})
			}
			if err := w.UpdateBatch(r.Int(), idx, deltas); err != nil {
				t.Logf("%s: UpdateBatch: %v", algo, err)
				return false
			}
			if r.Intn(3) == 0 {
				k := 1 + r.Intn(panes+1)
				if err := w.Advance(k); err != nil {
					t.Logf("%s: Advance: %v", algo, err)
					return false
				}
				cur += k
			}
		}
		// Brute-force recount: a same-seed sketch fed only the live
		// panes' updates, in pane order.
		ref, err := repro.New(algo, opts...)
		if err != nil {
			t.Logf("%s: New: %v", algo, err)
			return false
		}
		for seq := cur - (panes - 1); seq <= cur; seq++ {
			for _, u := range byPane[seq] {
				ref.Update(u.i, u.d)
			}
		}
		idx := make([]int, 0, n/3+1)
		for i := 0; i < n; i += 3 {
			idx = append(idx, i)
		}
		out := make([]float64, len(idx))
		if err := w.QueryBatch(idx, out); err != nil {
			t.Logf("%s: QueryBatch: %v", algo, err)
			return false
		}
		for j, i := range idx {
			want := ref.Query(i)
			if tol == 0 && out[j] != want {
				t.Logf("%s (seed %d): x[%d] = %v, live-pane recount %v (bit-exact required)",
					algo, seed, i, out[j], want)
				return false
			}
			if math.Abs(out[j]-want) > tol {
				t.Logf("%s (seed %d): x[%d] = %v, live-pane recount %v", algo, seed, i, out[j], want)
				return false
			}
			if got, err := w.Query(i); err != nil || got != out[j] {
				t.Logf("%s: Query(%d) = %v, %v; QueryBatch gave %v", algo, i, got, err, out[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Clock-driven rotation through the facade: an injected fake clock
// crossing pane boundaries must expire old traffic on the next touch,
// with no Advance call anywhere.
func TestWindowedClockDrivenExpiry(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(5000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	tick := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	w, err := repro.NewWindowed(2, "exact", repro.WithDim(50),
		repro.WithPanes(3), repro.WithPaneWidth(time.Minute), repro.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	if w.PaneWidth() != time.Minute {
		t.Fatalf("PaneWidth = %v", w.PaneWidth())
	}
	if err := w.Update(0, 7, 100); err != nil {
		t.Fatal(err)
	}
	tick(61 * time.Second)
	if err := w.Update(0, 7, 1); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Query(7); got != 101 {
		t.Fatalf("both panes live: Query = %v, want 101", got)
	}
	tick(2 * time.Minute) // first pane expires
	if got, _ := w.Query(7); got != 1 {
		t.Fatalf("first pane expired: Query = %v, want 1", got)
	}
	tick(time.Hour) // everything expires, via a query-only touch
	if got, _ := w.Query(7); got != 0 {
		t.Fatalf("all panes expired: Query = %v, want 0", got)
	}
}

// Windowed TopK: an outlier in an expired pane must vanish from the
// deviation heavy hitters while a live-pane outlier stays; non-bias
// algorithms report ErrNoBias.
func TestWindowedTopK(t *testing.T) {
	w, err := repro.NewWindowed(2, "l2sr", repro.WithDim(2000),
		repro.WithWords(256), repro.WithDepth(5), repro.WithPanes(2))
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 2000)
	deltas := make([]float64, 2000)
	for i := range idx {
		idx[i], deltas[i] = i, 100
	}
	// Pane 0: background crowd + outlier at 7.
	if err := w.UpdateBatch(0, idx, deltas); err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 7, 50_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	// Pane 1: background crowd + outlier at 1234.
	if err := w.UpdateBatch(0, idx, deltas); err != nil {
		t.Fatal(err)
	}
	if err := w.Update(0, 1234, 50_000); err != nil {
		t.Fatal(err)
	}
	top, err := w.TopK(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || (top[0].Index != 7 && top[1].Index != 7) {
		t.Fatalf("both panes live: TopK = %+v, want 7 among top 2", top)
	}
	if err := w.Advance(1); err != nil { // pane 0 (outlier 7) expires
		t.Fatal(err)
	}
	top, err = w.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Index != 1234 {
		t.Fatalf("after expiry: TopK = %+v, want index 1234", top)
	}

	cm, err := repro.NewWindowed(1, "countmin", repro.WithDim(100), repro.WithWords(16), repro.WithDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.TopK(3); !errors.Is(err, repro.ErrNoBias) {
		t.Errorf("countmin TopK: got %v, want ErrNoBias", err)
	}
}

// Rotation race at the facade: concurrent Advance, batched updates,
// and queries on a Windowed. The two marker coordinates move in
// lockstep within each batch, so every live-pane sum must keep them
// equal; after draining the window everything must read zero. Run
// with -race.
func TestWindowedRotationRace(t *testing.T) {
	const n, writers, panes = 1000, 3, 3
	batches := 40
	if testing.Short() {
		batches = 10
	}
	w, err := repro.NewWindowed(writers, "exact", repro.WithDim(n), repro.WithPanes(panes))
	if err != nil {
		t.Fatal(err)
	}
	var writerWG, helperWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			r := rand.New(rand.NewSource(int64(40 + g)))
			idx := make([]int, 32)
			deltas := make([]float64, 32)
			for u := 0; u < batches; u++ {
				idx[0], deltas[0] = 0, 1
				idx[1], deltas[1] = 1, 1
				for j := 2; j < len(idx); j++ {
					idx[j], deltas[j] = 2+r.Intn(n-2), 1
				}
				if err := w.UpdateBatch(g, idx, deltas); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	helperWG.Add(2)
	go func() { // rotator
		defer helperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.Advance(1); err != nil {
				t.Error(err)
				return
			}
			runtime.Gosched()
		}
	}()
	go func() { // reader
		defer helperWG.Done()
		out := make([]float64, 2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.QueryBatch([]int{0, 1}, out); err != nil {
				t.Error(err)
				return
			}
			if out[0] != out[1] {
				t.Errorf("torn window: x[0]=%v x[1]=%v", out[0], out[1])
				return
			}
			runtime.Gosched()
		}
	}()
	writerWG.Wait()
	close(stop)
	helperWG.Wait()

	if err := w.Advance(panes); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, n - 1} {
		if got, err := w.Query(i); err != nil || got != 0 {
			t.Fatalf("after draining, Query(%d) = %v, %v; want 0", i, got, err)
		}
	}
}
