package repro

import (
	"bytes"
	"fmt"

	"repro/internal/codec"
	"repro/internal/registry"
	"repro/internal/sketch"
)

// Backend names a counter-plane storage backend — where a sketch's
// d×s counter table physically lives. Select one at construction with
// WithBackend, or open a checkpoint file in place with OpenMmap.
type Backend = sketch.BackendKind

// The four counter-plane backends.
const (
	// BackendDense is the default: a flat in-memory float64 table,
	// bit-identical to every prior release, allocation-free on the
	// update and query hot paths.
	BackendDense = sketch.BackendDense
	// BackendCompressed stores the counters in a Counter Braids layered
	// structure (Lu et al.): ~1.5 shallow bits-limited counters per
	// bucket plus a small deep layer, a fraction of dense memory.
	// Insert-only (ErrInsertOnly on negative or fractional deltas) and
	// decode-at-query (ErrDecodeBudget past the braid's load
	// threshold).
	BackendCompressed = sketch.BackendCompressed
	// BackendMmap serves counters read-only straight out of a
	// memory-mapped checkpoint file — O(1) time-to-first-query
	// restores. Obtained from OpenMmap, never from New.
	BackendMmap = sketch.BackendMmap
	// BackendTiled is the cache-blocked dense layout: buckets grouped
	// into 64-wide tiles with all d rows of a tile stored contiguously,
	// so a point operation touches one tile column instead of d
	// scattered rows. Same answers as BackendDense bit for bit, better
	// locality for point-heavy workloads; only the linear-add table
	// sketches support it (conservative update needs in-place row
	// views). Slightly larger resident footprint (depth padded to odd).
	BackendTiled = sketch.BackendTiled
)

// Typed backend errors.
var (
	// ErrBackendUnsupported is returned by New (and the codec restore
	// paths) for an algorithm/backend pair that does not exist — e.g. a
	// compressed Count-Sketch, whose signed updates a Counter Braids
	// plane cannot hold. Backends lists the valid pairs.
	ErrBackendUnsupported = sketch.ErrBackendUnsupported
	// ErrInsertOnly is the panic value (wrapped) when a compressed
	// sketch receives a negative or fractional delta: a Counter Braids
	// plane holds non-negative integer counts only.
	ErrInsertOnly = sketch.ErrInsertOnly
	// ErrDecodeBudget is returned (wrapped, as a panic value) when a
	// compressed plane's message-passing decode fails to converge —
	// the braid was loaded past its decodable threshold. The sketch is
	// still intact and serializable; only queries are unavailable.
	ErrDecodeBudget = sketch.ErrPlaneDecode
	// ErrReadOnly is the panic value (wrapped) when an mmap-backed
	// sketch receives an update or merge: mapped checkpoints are
	// read-only serving replicas.
	ErrReadOnly = sketch.ErrReadOnlyPlane
)

// Backends returns the counter-plane backends the named algorithm
// supports (nil for unknown names). Every algorithm supports
// BackendDense; the linear-add table sketches (countmin, countmedian,
// dengrafiei) also support BackendCompressed; all table sketches
// support BackendMmap; the linear-add table sketches plus countsketch
// support BackendTiled. The bias-aware core algorithms keep their own
// sample-and-recover state and are dense-only.
func Backends(algo string) []Backend {
	e, ok := registry.Lookup(algo)
	if !ok {
		return nil
	}
	bs := []Backend{BackendDense}
	if e.Compressed {
		bs = append(bs, BackendCompressed)
	}
	if e.Mmap {
		bs = append(bs, BackendMmap)
	}
	if e.Tiled {
		bs = append(bs, BackendTiled)
	}
	return bs
}

// BackendOf reports which counter-plane backend s lives on. Foreign
// Sketch implementations and backend-less algorithms report
// BackendDense.
func BackendOf(s Sketch) Backend {
	b, ok := s.(baser)
	if !ok {
		return BackendDense
	}
	if bk, ok := b.base().inner.(interface{ Backend() sketch.BackendKind }); ok {
		return bk.Backend()
	}
	return BackendDense
}

// WriteSketchFile writes s to path as an aligned wire-format v2
// checkpoint file — the layout OpenMmap serves in place. The write is
// atomic (temp file + rename), and the file is also a valid Encode
// stream: Decode and Unmarshal read it like any other checkpoint.
func WriteSketchFile(path string, s Sketch) error {
	h, ok := s.(baser)
	if !ok {
		return fmt.Errorf("%w: %T", ErrForeignSketch, s)
	}
	if err := codec.WriteSketchFile(path, h.base().desc, h.base().inner); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// OpenMmap maps the checkpoint file at path and serves its sketch
// directly from the mapped bytes: no counters are decoded into the
// heap, so the time from open to first query is constant in the sketch
// size. The sketch is read-only — Query/QueryBatch (and TopK/Bias
// where the algorithm has them) work; Update and Merge fail with
// ErrReadOnly.
//
// close unmaps the file; the sketch must not be touched after close
// returns. The file must have been written by WriteSketchFile (or
// codec.EncodeSketchAligned) and hold an algorithm with mmap
// capability — see Backends.
func OpenMmap(path string) (s Sketch, close func() error, err error) {
	inner, desc, unmap, err := codec.OpenMmapSketch(path)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: %w", err)
	}
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		unmap()
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, desc.Algo)
	}
	return wrap(e, inner, desc), unmap, nil
}

// DecodeWith is Decode with an explicit counter-plane backend for the
// reconstructed sketch: BackendDense restores exactly like Decode;
// BackendCompressed re-inserts the decoded counters into a Counter
// Braids plane (the algorithm must support it — see Backends).
// BackendMmap is refused: a byte stream has nothing to map — use
// OpenMmap on a file written by WriteSketchFile.
func DecodeWith(data []byte, be Backend) (Sketch, error) {
	r := bytes.NewReader(data)
	inner, desc, err := codec.DecodeSketchBackend(r, sketch.Backend{Kind: be})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	if r.Len() > 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after a %d-byte payload",
			ErrTrailingData, r.Len(), len(data)-r.Len())
	}
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, desc.Algo)
	}
	desc.Algo = e.Name
	return wrap(e, inner, desc), nil
}
