package repro

import (
	"fmt"

	"repro/internal/concurrent"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/sketchio"
)

// Sharded is a linear sketch prepared for multi-goroutine ingestion:
// P private replicas built with the same configuration and seed absorb
// updates contention-free, and — by the same linearity that powers the
// distributed model — a reader merges them into a consistent snapshot
// on demand. Total memory is P× the single-sketch cost, the price of
// contention-free writes.
type Sharded struct {
	inner *concurrent.Sharded[sketch.Sketch]
	entry *registry.Entry
	desc  sketchio.Desc
}

// NewSharded builds a sharded sketch with the given shard count; algo
// and opts are exactly New's. Non-linear algorithms (cmcu, cmlcu)
// return ErrNotLinear — without linearity the shards could not be
// recombined.
func NewSharded(shards int, algo string, opts ...Option) (*Sharded, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("repro: shard count must be positive, got %d", shards)
	}
	e, ok := registry.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("%w: %q (valid: %v)", ErrUnknownAlgorithm, algo, Algorithms())
	}
	if !e.Linear {
		return nil, fmt.Errorf("%w: %s", ErrNotLinear, e.Name)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	mk := func() sketch.Sketch { return e.New(cfg.dim, cfg.words, cfg.depth, cfg.seed) }
	inner, err := newShards(e.Name, shards, mk)
	if err != nil {
		return nil, err
	}
	return &Sharded{
		inner: inner,
		entry: e,
		desc:  sketchio.Desc{Algo: e.Name, N: cfg.dim, S: cfg.words, D: cfg.depth, Seed: cfg.seed},
	}, nil
}

// newShards builds the replica set, converting a constructor panic (a
// parameter combination the algorithm rejects) into an error without
// paying for a throwaway probe sketch.
func newShards(algo string, shards int, mk func() sketch.Sketch) (s *concurrent.Sharded[sketch.Sketch], err error) {
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("repro: constructing %s: %v", algo, r)
		}
	}()
	return concurrent.New(shards, mk, registry.Merge), nil
}

// Update applies x[i] += delta on the shard owning the caller's slot.
// slot is any caller-chosen integer (e.g. a worker id); updates with
// the same slot serialize, different slots proceed in parallel.
func (s *Sharded) Update(slot, i int, delta float64) { s.inner.Update(slot, i, delta) }

// UpdateBatch applies x[idx[j]] += deltas[j] for every j on the slot's
// shard under a single lock acquisition — one acquire/release per
// batch instead of per element, on top of the replica's own row-major
// batched path. A length mismatch returns an error before any update
// is applied.
func (s *Sharded) UpdateBatch(slot int, idx []int, deltas []float64) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("repro: batch index count %d != delta count %d", len(idx), len(deltas))
	}
	s.inner.UpdateBatch(slot, idx, deltas)
	return nil
}

// Snapshot merges all shards into a fresh sketch the caller owns
// exclusively — a consistent sum of some interleaving of the updates,
// exactly the semantics of the distributed model. The result is a full
// facade sketch: it merges with and marshals like any other.
func (s *Sharded) Snapshot() (Sketch, error) {
	snap, err := s.inner.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return wrap(s.entry, snap, s.desc), nil
}

// Query answers a point query against a merged snapshot. For query
// bursts, take one Snapshot and query it directly instead.
func (s *Sharded) Query(i int) (float64, error) {
	v, err := s.inner.Query(i)
	if err != nil {
		return 0, fmt.Errorf("repro: %w", err)
	}
	return v, nil
}

// Algo returns the canonical algorithm name.
func (s *Sharded) Algo() string { return s.entry.Name }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.inner.Shards() }

// Dim returns the dimension of the summarized vector.
func (s *Sharded) Dim() int { return s.desc.N }

// Words returns total memory across shards.
func (s *Sharded) Words() int { return s.inner.Words() }
