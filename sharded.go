package repro

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/concurrent"
	"repro/internal/heavyhitter"
	"repro/internal/registry"
	"repro/internal/sketch"
)

// Sharded is a linear sketch prepared for multi-goroutine ingestion
// and serving: P private replicas built with the same configuration
// and seed absorb updates contention-free, and — by the same linearity
// that powers the distributed model — readers consume merged views.
//
// The read side is snapshot-based. Every shard carries an epoch bumped
// on each write; Snapshot returns the current published read replica —
// an immutable merged sum served with zero shard locks — and Refresh
// folds in the shards that changed since the last refresh (locking
// only those, briefly, one at a time) before atomically swapping a new
// replica in. A snapshot is therefore as fresh as the last Refresh:
// writes land in it only when some reader (or Query/QueryBatch, which
// refresh on staleness) next refreshes, never retroactively. Total
// memory is up to 2P+1 single-sketch replicas (the P shards, lazily
// made frozen copies of written shards, and the published snapshot) —
// the price of contention-free writes and coordination-free reads.
type Sharded struct {
	inner *concurrent.Sharded[sketch.Sketch]
	entry *registry.Entry
	desc  codec.Desc
}

// NewSharded builds a sharded sketch with the given shard count; algo
// and opts are exactly New's. Non-linear algorithms (cmcu, cmlcu)
// return ErrNotLinear — without linearity the shards could not be
// recombined.
func NewSharded(shards int, algo string, opts ...Option) (*Sharded, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrInvalidOption, shards)
	}
	e, ok := registry.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("%w: %q (valid: %v)", ErrUnknownAlgorithm, algo, Algorithms())
	}
	if !e.Linear {
		return nil, fmt.Errorf("%w: %s", ErrNotLinear, e.Name)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.backend != BackendDense {
		return nil, fmt.Errorf("%w: WithBackend(%v) — sharded and windowed replicas are mutable merge targets, so they are dense-only", ErrInvalidOption, cfg.backend)
	}
	mk := func() sketch.Sketch { return e.MustNew(cfg.shape()) }
	inner, err := newShards(e.Name, shards, mk)
	if err != nil {
		return nil, err
	}
	return &Sharded{
		inner: inner,
		entry: e,
		desc:  codec.Desc{Algo: e.Name, N: cfg.dim, S: cfg.words, D: cfg.depth, Seed: cfg.seed, Hash: cfg.hash},
	}, nil
}

// newShards builds the replica set, converting a constructor panic (a
// parameter combination the algorithm rejects) into an error without
// paying for a throwaway probe sketch.
func newShards(algo string, shards int, mk func() sketch.Sketch) (s *concurrent.Sharded[sketch.Sketch], err error) {
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("repro: constructing %s: %v", algo, r)
		}
	}()
	return concurrent.New(shards, mk, registry.Merge), nil
}

// Update applies x[i] += delta on the shard owning the caller's slot.
// slot is any caller-chosen integer (e.g. a worker id); updates with
// the same slot serialize, different slots proceed in parallel.
func (s *Sharded) Update(slot, i int, delta float64) { s.inner.Update(slot, i, delta) }

// Checkpoint writes the Sharded's full state to w as a wire-format v2
// checkpoint container: the descriptor, then every shard's replica
// state with its epoch, so RestoreSharded rebuilds a Sharded that
// answers Query/QueryBatch/TopK bit-identically — same shards, same
// epochs, same snapshot merge order. Safe under concurrent writers:
// each shard is captured under its own lock, so the checkpoint is a
// consistent sum of some interleaving of the updates, exactly the
// Merged guarantee.
func (s *Sharded) Checkpoint(w io.Writer) error {
	if err := codec.EncodeSharded(w, s.desc, s.inner); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// RestoreSharded reconstructs a Sharded from a Checkpoint stream: the
// replica set is rebuilt from the descriptor through the registry (the
// shared-randomness protocol — same seed, same hash functions) and
// every shard's state and epoch is restored. The result ingests,
// snapshots, and checkpoints like the original.
func RestoreSharded(r io.Reader) (*Sharded, error) {
	inner, desc, err := codec.DecodeSharded(r)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	e, ok := registry.Lookup(desc.Algo)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, desc.Algo)
	}
	desc.Algo = e.Name
	return &Sharded{inner: inner, entry: e, desc: desc}, nil
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j on the slot's
// shard under a single lock acquisition — one acquire/release per
// batch instead of per element, on top of the replica's own row-major
// batched path. A length mismatch returns an error before any update
// is applied.
func (s *Sharded) UpdateBatch(slot int, idx []int, deltas []float64) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("%w: %d indexes, %d deltas", ErrBadBatch, len(idx), len(deltas))
	}
	s.inner.UpdateBatch(slot, idx, deltas)
	return nil
}

// Snapshot returns the current published read replica — an immutable
// merged view served with zero shard locks, shared by every caller, so
// any number of goroutines may query it concurrently while writers
// keep ingesting. The view is as fresh as the last Refresh (the first
// call builds one); call Refresh to fold newer writes in, and Merged
// for a mutable caller-owned sketch.
func (s *Sharded) Snapshot() (*Snapshot, error) {
	v, err := s.inner.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &Snapshot{view: v, entry: s.entry, desc: s.desc}, nil
}

// Refresh folds the shards that changed since the last refresh into a
// new published snapshot and returns it. Only the changed shards are
// locked — briefly, one at a time — so writers stall at most for one
// state copy; unchanged shards are not touched at all.
func (s *Sharded) Refresh() (*Snapshot, error) {
	v, err := s.inner.Refresh()
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &Snapshot{view: v, entry: s.entry, desc: s.desc}, nil
}

// Merged merges all shards into a fresh sketch the caller owns
// exclusively — a consistent sum of some interleaving of the updates,
// exactly the semantics of the distributed model. The result is a full
// facade sketch: it updates, merges, and marshals like any other, at
// the cost of locking every shard (one at a time) to build.
func (s *Sharded) Merged() (Sketch, error) {
	snap, err := s.inner.Merged()
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return wrap(s.entry, snap, s.desc), nil
}

// Query answers a point query with every write so far folded in; the
// snapshot is refreshed only if some shard changed since the last one.
// For query bursts, take one Snapshot and query it directly instead.
func (s *Sharded) Query(i int) (float64, error) {
	v, err := s.inner.Query(i)
	if err != nil {
		return 0, fmt.Errorf("repro: %w", err)
	}
	return v, nil
}

// QueryBatch writes an estimate of x[idx[j]] into out[j] for every j
// with every write so far folded in, through the replica's native
// batched query path; the snapshot is refreshed only if some shard
// changed since the last one. A length mismatch returns an error
// before anything is written.
func (s *Sharded) QueryBatch(idx []int, out []float64) error {
	if len(idx) != len(out) {
		return fmt.Errorf("%w: %d indexes, %d outputs", ErrBadBatch, len(idx), len(out))
	}
	if err := s.inner.QueryBatch(idx, out); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// Algo returns the canonical algorithm name.
func (s *Sharded) Algo() string { return s.entry.Name }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.inner.Shards() }

// Dim returns the dimension of the summarized vector.
func (s *Sharded) Dim() int { return s.desc.N }

// Words returns total memory across shards.
func (s *Sharded) Words() int { return s.inner.Words() }

// Snapshot is an immutable merged view of a Sharded sketch, published
// by Refresh and shared by every reader. All read methods are safe for
// any number of concurrent goroutines and take zero shard locks —
// Query routes single queries through the allocation-per-call batched
// path precisely so that no per-sketch scratch is shared between
// readers. A snapshot never changes after publication: writes that
// land after the Refresh that built it are visible only in later
// snapshots (check Stale, refresh via the owning Sharded).
type Snapshot struct {
	view  *concurrent.Snapshot[sketch.Sketch]
	entry *registry.Entry
	desc  codec.Desc
}

// Query returns an estimate of x[i] as of the snapshot.
func (sn *Snapshot) Query(i int) float64 { return sn.view.Query(i) }

// QueryBatch writes an estimate of x[idx[j]] into out[j] for every j,
// as of the snapshot, through the replica's native batched query path
// (bit-identical to the element-wise Query loop). A length mismatch
// returns an error before anything is written.
func (sn *Snapshot) QueryBatch(idx []int, out []float64) error {
	if len(idx) != len(out) {
		return fmt.Errorf("%w: %d indexes, %d outputs", ErrBadBatch, len(idx), len(out))
	}
	sn.view.QueryBatch(idx, out)
	return nil
}

// Bias returns the bias estimate β̂ as of the snapshot, or ErrNoBias
// for algorithms that do not track one.
func (sn *Snapshot) Bias() (float64, error) {
	b, ok := sn.view.Sketch().(interface{ Bias() float64 })
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoBias, sn.entry.Name)
	}
	return b.Bias(), nil
}

// TopK returns the k coordinates deviating most from the bias estimate
// as of the snapshot, sorted by decreasing deviation, through the
// batched query path. ErrNoBias unless the algorithm is bias-aware.
func (sn *Snapshot) TopK(k int) ([]Deviator, error) {
	b, ok := sn.view.Sketch().(heavyhitter.BiasedSketch)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoBias, sn.entry.Name)
	}
	return heavyhitter.TopK(b, k), nil
}

// Scan returns every coordinate whose estimated deviation from the
// bias exceeds threshold as of the snapshot, sorted by decreasing
// deviation, through the batched query path. ErrNoBias unless the
// algorithm is bias-aware.
func (sn *Snapshot) Scan(threshold float64) ([]Deviator, error) {
	b, ok := sn.view.Sketch().(heavyhitter.BiasedSketch)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoBias, sn.entry.Name)
	}
	return heavyhitter.Scan(b, threshold), nil
}

// Stale reports whether any shard has absorbed writes since this
// snapshot was published — an atomic comparison, no locks. A false
// result is momentary under concurrent writers.
func (sn *Snapshot) Stale() bool { return sn.view.Stale() }

// Owned clones the snapshot into a fresh caller-owned facade sketch
// that updates, merges, and marshals like any other — without taking
// any shard lock (the clone merges from the immutable replica, not
// from the live shards).
func (sn *Snapshot) Owned() (Sketch, error) {
	fresh, err := registry.SafeNew(sn.entry.Name, sn.desc.Shape())
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	if err := registry.Merge(fresh, sn.view.Sketch()); err != nil {
		return nil, fmt.Errorf("repro: cloning snapshot: %w", err)
	}
	return wrap(sn.entry, fresh, sn.desc), nil
}

// Algo returns the canonical algorithm name.
func (sn *Snapshot) Algo() string { return sn.entry.Name }

// Dim returns the dimension of the summarized vector.
func (sn *Snapshot) Dim() int { return sn.desc.N }

// Words returns the size of the merged replica in 64-bit words (one
// single-sketch cost, not the P× sharded total).
func (sn *Snapshot) Words() int { return sn.view.Sketch().Words() }
