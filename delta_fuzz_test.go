package repro_test

// Fuzz layer for the delta-frame decoder behind the distributed
// monitoring fabric: arbitrary bytes must never panic DecodeDelta, and
// any frame it does accept must re-encode and decode back to the same
// frame — otherwise a hostile or corrupted hop could desynchronize the
// aggregation tree.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/registry"
)

// deltaFuzzSeed builds a valid encoded delta frame for the corpus.
func deltaFuzzSeed(f *testing.F, full bool) []byte {
	f.Helper()
	d := codec.Desc{Algo: "l2sr", N: 400, S: 16, D: 2, Seed: 5}
	const shards = 3
	var entries []codec.DeltaEntry
	for sh := 0; sh < shards; sh++ {
		if !full && sh == 1 {
			continue // delta frames carry only changed shards
		}
		sk, err := registry.SafeNew(d.Algo, d.Shape())
		if err != nil {
			f.Fatal(err)
		}
		for u := 0; u < 20+sh; u++ {
			sk.Update((u*7+sh)%d.N, float64(1+u%4))
		}
		entries = append(entries, codec.DeltaEntry{Shard: sh, Epoch: uint64(sh + 1), Sk: sk})
	}
	var buf bytes.Buffer
	if err := codec.EncodeDelta(&buf, codec.DeltaFrame{Desc: d, Full: full, Shards: shards, Entries: entries}); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzDecodeDelta(f *testing.F) {
	deltaSeed := deltaFuzzSeed(f, false)
	fullSeed := deltaFuzzSeed(f, true)
	f.Add(deltaSeed)
	f.Add(fullSeed)
	for _, cut := range []int{1, 9, 17, len(deltaSeed) / 2, len(deltaSeed) - 1} {
		if cut < len(deltaSeed) {
			f.Add(deltaSeed[:cut])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("BAS2junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := codec.DecodeDelta(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for hostile bytes
		}
		// Anything the decoder accepts must be internally consistent
		// enough to re-encode...
		var buf bytes.Buffer
		if err := codec.EncodeDelta(&buf, fr); err != nil {
			t.Fatalf("accepted frame fails re-encode: %v", err)
		}
		// ...and the re-encoded frame must decode back to the same
		// header, epochs, and bit-identical shard states.
		again, err := codec.DecodeDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if again.Full != fr.Full || again.Shards != fr.Shards || len(again.Entries) != len(fr.Entries) {
			t.Fatalf("round trip changed the frame header: %+v vs %+v", again, fr)
		}
		for k := range fr.Entries {
			a, b := fr.Entries[k], again.Entries[k]
			if a.Shard != b.Shard || a.Epoch != b.Epoch {
				t.Fatalf("entry %d: (%d,%d) became (%d,%d)", k, a.Shard, a.Epoch, b.Shard, b.Epoch)
			}
			for i := 0; i < fr.Desc.N; i += 29 {
				if math.Float64bits(a.Sk.Query(i)) != math.Float64bits(b.Sk.Query(i)) {
					t.Fatalf("entry %d diverged at coordinate %d", k, i)
				}
			}
		}
	})
}
