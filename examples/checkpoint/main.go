// Checkpoint example: a sliding-window heavy-hitter monitor is
// "killed" halfway through a day of traffic, restored from its
// checkpoint file, and run to the end — then compared against an
// uninterrupted twin that saw the identical stream. The restored
// monitor's answers (point queries and windowed top-k deviators) are
// bit-for-bit the twin's: a checkpoint is the monitor, not an
// approximation of it.
//
// This is the wire-format v2 checkpoint/restore path end to end: the
// window's rotation state, every closed pane, and the open pane's
// sharded replica set all round-trip through one file.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro"
)

const (
	n         = 200_000 // key space
	words     = 4096
	panes     = 6 // 6-pane sliding window (say, six 4-hour panes)
	perPane   = 40_000
	totalUpd  = perPane * panes * 2 // two windows' worth of traffic
	checkFile = "window.ckpt"
)

func main() {
	dir, err := os.MkdirTemp("", "repro-checkpoint")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, checkFile)

	// One deterministic stream of biased traffic with a few planted
	// heavy deviators, materialized up front so the interrupted monitor
	// and the uninterrupted twin consume identical updates.
	idx, deltas := makeStream()

	// ---- Phase 1: monitor the first half of the day, then "crash".
	monitor := newMonitor()
	feed(monitor, idx[:totalUpd/2], deltas[:totalUpd/2], 0)
	if err := checkpointTo(monitor, path); err != nil {
		panic(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("half-day monitor checkpointed to %s (%d bytes, %d live panes)\n",
		checkFile, info.Size(), monitor.Live())
	monitor = nil // the process dies here

	// ---- Phase 2: a new process restores and finishes the day.
	f, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	restored, err := repro.RestoreWindowed(f)
	f.Close()
	if err != nil {
		panic(err)
	}
	fmt.Printf("restored %s window: n=%d, %d panes, %d live\n\n",
		restored.Algo(), restored.Dim(), restored.Panes(), restored.Live())
	feed(restored, idx[totalUpd/2:], deltas[totalUpd/2:], totalUpd/2)

	// ---- The twin never crashed.
	twin := newMonitor()
	feed(twin, idx, deltas, 0)

	// Compare: windowed top-5 deviation heavy hitters...
	rTop, err := restored.TopK(5)
	if err != nil {
		panic(err)
	}
	tTop, err := twin.TopK(5)
	if err != nil {
		panic(err)
	}
	identical := len(rTop) == len(tTop)
	fmt.Println("windowed top-5 deviators (restored vs uninterrupted):")
	for i := range rTop {
		same := rTop[i] == tTop[i]
		identical = identical && same
		fmt.Printf("  #%d  key %6d  deviation %10.2f   | key %6d  deviation %10.2f   match=%v\n",
			i+1, rTop[i].Index, rTop[i].Deviation, tTop[i].Index, tTop[i].Deviation, same)
	}

	// ...and point queries across the key space.
	for i := 0; i < n; i += 997 {
		a, err := restored.Query(i)
		if err != nil {
			panic(err)
		}
		b, err := twin.Query(i)
		if err != nil {
			panic(err)
		}
		if a != b {
			identical = false
			fmt.Printf("  query %d diverged: restored %v, twin %v\n", i, a, b)
		}
	}
	fmt.Printf("\nrestored monitor answers bit-identical to the uninterrupted twin: %v\n", identical)
}

// newMonitor builds the windowed bias-aware monitor both runs use:
// identical shape and seed, so their sketches are comparable
// replica-for-replica.
func newMonitor() *repro.Windowed {
	w, err := repro.NewWindowed(2, "l2sr",
		repro.WithDim(n), repro.WithWords(words), repro.WithSeed(42),
		repro.WithPanes(panes))
	if err != nil {
		panic(err)
	}
	return w
}

// feed replays updates [off, off+len) of the global stream, rotating a
// pane every perPane updates of *global* position — so an interrupted
// run and its resumption rotate at exactly the same stream offsets.
func feed(w *repro.Windowed, idx []int, deltas []float64, off int) {
	const batch = 2048
	for pos := 0; pos < len(idx); {
		m := batch
		if rem := len(idx) - pos; rem < m {
			m = rem
		}
		// Stop the batch at the next pane boundary.
		if room := perPane - (off+pos)%perPane; m > room {
			m = room
		}
		slot := (off + pos) / batch // deterministic writer slot
		if err := w.UpdateBatch(slot, idx[pos:pos+m], deltas[pos:pos+m]); err != nil {
			panic(err)
		}
		pos += m
		if (off+pos)%perPane == 0 && off+pos < totalUpd {
			if err := w.Advance(1); err != nil {
				panic(err)
			}
		}
	}
}

// checkpointTo writes the window's checkpoint to path.
func checkpointTo(w *repro.Windowed, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := w.Checkpoint(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// makeStream builds the day's traffic: background load biased around
// 25 per key, plus a handful of keys that run far hotter in the second
// half — the deviators the windowed monitor should surface.
func makeStream() ([]int, []float64) {
	r := rand.New(rand.NewSource(7))
	idx := make([]int, totalUpd)
	deltas := make([]float64, totalUpd)
	hot := []int{1234, 56789, 101_112, 131_415, 161_718}
	for u := range idx {
		if u > totalUpd/3 && u%97 == 0 {
			idx[u] = hot[u%len(hot)]
			deltas[u] = float64(400 + u%100)
			continue
		}
		idx[u] = r.Intn(n)
		deltas[u] = 25 + float64(r.Intn(11)) - 5
	}
	return idx, deltas
}
