// Heavy hitters example: find the coordinates that deviate most from
// the crowd in a biased workload. With a bias, "heavy" means "far from
// β", not "large": a classical heavy-hitter query on this data reports
// essentially every coordinate (they all carry the ≈3700 bias mass),
// while a bias-aware sketch isolates the true anomalies — the §1
// motivation and the distributed outlier-detection use case of [31].
// repro.Scan does the deviation ranking.
//
// Detectability is governed by Theorem 4: deviations below
// O(1/√k)·min_β Err_2^k(x−β) — the bucket noise floor — are
// indistinguishable from the crowd, so the planted anomalies here are
// chosen above that floor (as any real anomaly-detection deployment
// would size its sketch for its alert threshold).
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/workload"
)

func main() {
	const n, words = 500_000, 1024
	const outliers = 12
	const threshold = 50_000

	// Wiki-like counters (bias ≈ 3700) with planted anomalies: keys
	// running 100k–400k over the crowd.
	r := rand.New(rand.NewSource(1))
	x := workload.WikiLike{}.Vector(n, r)
	planted := map[int]float64{}
	for o := 0; o < outliers; o++ {
		i := r.Intn(n)
		x[i] += float64(100_000 * (1 + o%4))
		planted[i] = x[i]
	}

	l2 := repro.MustNew("l2sr",
		repro.WithDim(n), repro.WithWords(words), repro.WithSeed(2)).(repro.Biased)
	repro.SketchVector(l2, x)
	fmt.Printf("bias estimate: %.1f (crowd level)\n\n", l2.Bias())

	// Rank coordinates by estimated deviation from the bias.
	hits, err := repro.Scan(l2, threshold)
	if err != nil {
		panic(err)
	}

	fmt.Printf("found %d candidates deviating >%d from the bias (planted %d):\n",
		len(hits), threshold, outliers)
	found := 0
	for _, h := range hits {
		_, isPlanted := planted[h.Index]
		if isPlanted {
			found++
		}
		fmt.Printf("  x[%6d] est %9.0f exact %9.0f planted=%v\n",
			h.Index, h.Estimate, x[h.Index], isPlanted)
	}
	fmt.Printf("\nrecall: %d/%d planted anomalies found using %d words (%.0fx compression)\n",
		found, outliers, l2.Words(), float64(n)/float64(l2.Words()))
}
