// Quickstart: sketch a biased vector with ℓ2-S/R, query a few
// coordinates, and compare against a plain Count-Sketch of the same
// size — the paper's headline result in thirty lines, written entirely
// against the public repro API.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/workload"
)

func main() {
	const n, words = 1_000_000, 16_384

	// A million coordinates clustered around 100 (the "bias"), like a
	// per-second request counter: classical sketches see a huge tail.
	r := rand.New(rand.NewSource(1))
	x := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)

	// Bias-aware sketch (Theorem 4) and an equal-budget Count-Sketch:
	// at the same WithWords/WithDepth setting every algorithm consumes
	// the same number of 64-bit words.
	l2 := repro.MustNew("l2sr", repro.WithDim(n), repro.WithWords(words), repro.WithSeed(2)).(repro.Biased)
	cs := repro.MustNew("countsketch", repro.WithDim(n), repro.WithWords(words), repro.WithSeed(3))
	repro.SketchVector(l2, x)
	repro.SketchVector(cs, x)

	fmt.Printf("n = %d, sketch = %d words (%.0fx compression)\n",
		n, l2.Words(), float64(n)/float64(l2.Words()))
	fmt.Printf("estimated bias = %.2f (true bias 100)\n\n", l2.Bias())

	fmt.Println("point queries:")
	for _, i := range []int{0, 12345, 999999} {
		fmt.Printf("  x[%6d] = %6.0f   l2-S/R: %8.2f   Count-Sketch: %8.2f\n",
			i, x[i], l2.Query(i), cs.Query(i))
	}

	l2hat, cshat := repro.Recover(l2), repro.Recover(cs)
	fmt.Printf("\nfull recovery, average error:  l2-S/R %.3f   Count-Sketch %.3f\n",
		repro.AvgAbsErr(x, l2hat), repro.AvgAbsErr(x, cshat))
	fmt.Printf("full recovery, maximum error:  l2-S/R %.3f   Count-Sketch %.3f\n",
		repro.MaxAbsErr(x, l2hat), repro.MaxAbsErr(x, cshat))
}
