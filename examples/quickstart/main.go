// Quickstart: sketch a biased vector with ℓ2-S/R, query a few
// coordinates, and compare against a plain Count-Sketch of the same
// size — the paper's headline result in thirty lines.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

func main() {
	const n, k = 1_000_000, 4096

	// A million coordinates clustered around 100 (the "bias"), like a
	// per-second request counter: classical sketches see a huge tail.
	r := rand.New(rand.NewSource(1))
	x := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)

	// Bias-aware sketch (Theorem 4) and an equal-budget Count-Sketch.
	l2 := core.NewL2SR(core.L2Config{N: n, K: k}, rand.New(rand.NewSource(2)))
	cs := sketch.NewCountSketch(sketch.Config{N: n, Rows: 4 * k, Depth: 10},
		rand.New(rand.NewSource(3)))
	sketch.SketchVector(l2, x)
	sketch.SketchVector(cs, x)

	fmt.Printf("n = %d, sketch = %d words (%.0fx compression)\n",
		n, l2.Words(), float64(n)/float64(l2.Words()))
	fmt.Printf("estimated bias = %.2f (true bias 100)\n\n", l2.Bias())

	fmt.Println("point queries:")
	for _, i := range []int{0, 12345, 999999} {
		fmt.Printf("  x[%6d] = %6.0f   l2-S/R: %8.2f   Count-Sketch: %8.2f\n",
			i, x[i], l2.Query(i), cs.Query(i))
	}

	l2hat, cshat := sketch.Recover(l2), sketch.Recover(cs)
	fmt.Printf("\nfull recovery, average error:  l2-S/R %.3f   Count-Sketch %.3f\n",
		vecmath.AvgAbsErr(x, l2hat), vecmath.AvgAbsErr(x, cshat))
	fmt.Printf("full recovery, maximum error:  l2-S/R %.3f   Count-Sketch %.3f\n",
		vecmath.MaxAbsErr(x, l2hat), vecmath.MaxAbsErr(x, cshat))
}
