// Streaming example: maintain an ℓ2-S/R sketch with the Bias-Heap
// (Algorithms 5–6) over a Hudong-like edge stream, answering real-time
// point queries mid-stream — the scenario of §4.4 and Figure 6. An
// exact counter vector runs alongside as ground truth.
//
// Ingestion goes through the batched update path (repro.UpdateBatch):
// edges are applied in chunks of batchSize, which amortizes hash-
// coefficient loads and interface dispatch across the chunk — the
// shape a production ingestion pipeline would use — while checkpoint
// queries still run mid-stream between batches.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/workload"
)

const batchSize = 1024

func main() {
	const articles = 200_000

	// "Related-to" links arrive one edge at a time; x tracks article
	// out-degree.
	r := rand.New(rand.NewSource(1))
	edges := workload.HudongLike{}.EdgeStream(articles, r)
	fmt.Printf("streaming %d edge insertions over %d articles in batches of %d\n\n",
		len(edges), articles, batchSize)

	l2 := repro.MustNew("l2sr",
		repro.WithDim(articles), repro.WithWords(16_384), repro.WithSeed(2)).(repro.Biased)
	exact := repro.Exact(articles)

	checkpoints := []int{len(edges) / 4, len(edges) / 2, len(edges)}
	probe := []int{0, 42, 31337, 123456}

	// Edges are unit increments, so one reusable all-ones delta buffer
	// serves every batch.
	ones := make([]float64, batchSize)
	for j := range ones {
		ones[j] = 1
	}

	pos := 0
	for _, cp := range checkpoints {
		// Drain the stream up to the checkpoint, one batch at a time.
		for pos < cp {
			end := pos + batchSize
			if end > cp {
				end = cp
			}
			chunk := edges[pos:end]
			if err := repro.UpdateBatch(l2, chunk, ones[:len(chunk)]); err != nil {
				panic(err)
			}
			if err := repro.UpdateBatch(exact, chunk, ones[:len(chunk)]); err != nil {
				panic(err)
			}
			pos = end
		}
		// Checkpoint reads go through the batched query path — the
		// read-side twin of the ingestion batching above, bit-identical
		// to querying each probe individually.
		fmt.Printf("after %8d edges: bias estimate = %.3f\n", pos, l2.Bias())
		est := make([]float64, len(probe))
		truth := make([]float64, len(probe))
		if err := repro.QueryBatch(l2, probe, est); err != nil {
			panic(err)
		}
		if err := repro.QueryBatch(exact, probe, truth); err != nil {
			panic(err)
		}
		for k, a := range probe {
			fmt.Printf("  out-degree[%6d]: exact %5.0f, sketch %8.2f\n", a, truth[k], est[k])
		}
		fmt.Println()
	}
}
