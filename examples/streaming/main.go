// Streaming example: maintain an ℓ2-S/R sketch with the Bias-Heap
// (Algorithms 5–6) over a Hudong-like edge stream, answering real-time
// point queries mid-stream — the scenario of §4.4 and Figure 6. An
// exact counter vector runs alongside as ground truth.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/workload"
)

func main() {
	const articles = 200_000

	// "Related-to" links arrive one edge at a time; x tracks article
	// out-degree.
	r := rand.New(rand.NewSource(1))
	edges := workload.HudongLike{}.EdgeStream(articles, r)
	fmt.Printf("streaming %d edge insertions over %d articles\n\n", len(edges), articles)

	l2 := repro.MustNew("l2sr",
		repro.WithDim(articles), repro.WithWords(16_384), repro.WithSeed(2)).(repro.Biased)
	exact := repro.Exact(articles)

	checkpoints := map[int]bool{
		len(edges) / 4: true,
		len(edges) / 2: true,
		len(edges) - 1: true,
	}
	probe := []int{0, 42, 31337, 123456}

	for pos, src := range edges {
		l2.Update(src, 1)
		exact.Update(src, 1)
		if checkpoints[pos] {
			fmt.Printf("after %8d edges: bias estimate = %.3f\n", pos+1, l2.Bias())
			for _, a := range probe {
				fmt.Printf("  out-degree[%6d]: exact %5.0f, sketch %8.2f\n",
					a, exact.Query(a), l2.Query(a))
			}
			fmt.Println()
		}
	}
}
