// Analytics example: the statistical queries §1 lists beyond point
// query — range sums and quantiles — answered from a dyadic stack of
// bias-aware sketches over a day of WorldCup-like traffic, plus top-k
// deviation outliers. One pass over the data, one sketch, many query
// types, all through the public repro API.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/workload"
)

func main() {
	const n = 86_400 // one day at second resolution

	r := rand.New(rand.NewSource(1))
	x := workload.WorldCupLike{}.Vector(n, r)

	// Hybrid dyadic stack: the coarse levels are small (tens to a few
	// thousand block sums carrying most of the mass), so they are kept
	// exactly; the fine levels are large and get an ℓ2-S/R each, with
	// every level discovering its own block-scaled bias. This is the
	// standard engineering of dyadic sketches — spend words where the
	// dimension is, not where the mass is.
	rq, err := repro.NewRange(n, func(_, size int, seed int64) repro.Sketch {
		if size <= 4096 {
			return repro.Exact(size)
		}
		return repro.MustNew("l2sr",
			repro.WithDim(size), repro.WithWords(2048), repro.WithSeed(seed))
	}, 2)
	if err != nil {
		panic(err)
	}
	for i, v := range x {
		rq.Update(i, v)
	}
	fmt.Printf("dyadic sketch: %d levels, %d words for n=%d\n\n", rq.Levels(), rq.Words(), n)

	// Range queries: hourly traffic.
	fmt.Println("requests per hour (first 6 hours):")
	for h := 0; h < 6; h++ {
		lo, hi := h*3600, (h+1)*3600
		var exact float64
		for _, v := range x[lo:hi] {
			exact += v
		}
		got := rq.RangeSum(lo, hi)
		fmt.Printf("  hour %d: estimate %9.0f   exact %9.0f   (%+.2f%%)\n",
			h, got, exact, 100*(got-exact)/exact)
	}

	// Quantiles of the traffic distribution over the day.
	fmt.Println("\ntraffic mass quantiles (second of day by cumulative requests):")
	for _, q := range []float64{0.25, 0.5, 0.75} {
		sec := rq.Quantile(q)
		fmt.Printf("  %2.0f%% of requests arrived by second %6d (%.1fh)\n",
			q*100, sec, float64(sec)/3600)
	}

	// Deviation heavy hitters from a flat (non-dyadic) sketch: the
	// burst seconds.
	l2 := repro.MustNew("l2sr",
		repro.WithDim(n), repro.WithWords(4096), repro.WithSeed(3)).(repro.Biased)
	repro.SketchVector(l2, x)
	fmt.Printf("\nbase traffic level (bias): %.1f req/s\n", l2.Bias())
	fmt.Println("top burst seconds (deviation heavy hitters):")
	top, err := repro.TopK(l2, 5)
	if err != nil {
		panic(err)
	}
	for _, d := range top {
		fmt.Printf("  second %6d: estimated %6.0f req/s (exact %6.0f)\n",
			d.Index, d.Estimate, x[d.Index])
	}
}
