// Continuous distributed monitoring: eight collectors each ingest
// their local slice of a biased event stream; every 50k local updates
// each ships its ℓ2-S/R sketch to the coordinator as wire-format
// bytes, and the coordinator — by linearity — rebuilds a fresh global
// summary by merging the latest packet from every site. The §1
// distributed model and the §4.4 streaming model running together.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro"
)

const (
	n        = 200_000
	sites    = 8
	perSite  = 250_000
	syncStep = 50_000
)

type update struct {
	i     int
	delta float64
}

func main() {
	// Each site sees a stream of key hits; keys are uniformly busy
	// (the bias) except a few globally hot keys that heat up late in
	// the streams.
	hot := []int{1234, 99_999, 150_000}
	streams := make([][]update, sites)
	exact := make([]float64, n)
	for p := 0; p < sites; p++ {
		r := rand.New(rand.NewSource(int64(p + 1)))
		us := make([]update, perSite)
		for u := range us {
			var i int
			if u > perSite/2 && r.Intn(50) == 0 {
				i = hot[r.Intn(len(hot))] // late hot keys
			} else {
				i = r.Intn(n)
			}
			us[u] = update{i: i, delta: 1}
			exact[i]++
		}
		streams[p] = us
	}

	// Sites and coordinator agree on one configuration and seed, so
	// unmarshaled site sketches merge.
	opts := []repro.Option{repro.WithDim(n), repro.WithWords(8192), repro.WithSeed(42)}
	collectors := make([]repro.Sketch, sites)
	for p := range collectors {
		collectors[p] = repro.MustNew("l2sr", opts...)
	}

	fmt.Printf("%d sites × %d updates, sync every %dk per site\n\n", sites, perSite, syncStep/1000)

	var coord repro.Sketch
	est := make([]float64, len(hot))
	var commWords, rounds int
	for round := 1; round*syncStep <= perSite; round++ {
		// Each site ingests its next slice, then ships its sketch.
		coord = repro.MustNew("l2sr", opts...)
		for p := 0; p < sites; p++ {
			for _, u := range streams[p][(round-1)*syncStep : round*syncStep] {
				collectors[p].Update(u.i, u.delta)
			}
			pkt, err := repro.Marshal(collectors[p])
			if err != nil {
				panic(err)
			}
			site, err := repro.Unmarshal(pkt)
			if err != nil {
				panic(err)
			}
			if err := repro.Merge(coord, site); err != nil {
				panic(err)
			}
			commWords += site.Words()
		}
		rounds++

		// The coordinator serves its dashboards through the batched
		// query path: one QueryBatch per refresh instead of a point
		// query per key (bit-identical, cheaper per estimate).
		beta, _ := repro.Bias(coord)
		if err := repro.QueryBatch(coord, hot, est); err != nil {
			panic(err)
		}
		fmt.Printf("round %d: coordinator bias %.2f, hot keys:", round, beta)
		for k, h := range hot {
			fmt.Printf("  x[%d]≈%.0f", h, est[k])
		}
		fmt.Println()
	}

	fmt.Printf("\ncommunication: %d words over %d rounds (naive per round: %d words)\n",
		commWords, rounds, sites*n)
	// est still holds the final round's batched estimates for hot.
	var worst float64
	for k, h := range hot {
		if e := math.Abs(est[k] - exact[h]); e > worst {
			worst = e
		}
	}
	fmt.Printf("final hot-key worst error: %.0f (exact counts ~%.0f)\n", worst, exact[hot[0]])
}
