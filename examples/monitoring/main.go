// Continuous distributed monitoring: eight collectors each ingest
// their local slice of a biased event stream; every 50k local updates
// each ships its ℓ2-S/R sketch to the coordinator, which — by
// linearity — always holds a fresh global summary. The §1 distributed
// model and the §4.4 streaming model running together.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/distributed"
	"repro/internal/stream"
)

func main() {
	const (
		n       = 200_000
		sites   = 8
		perSite = 250_000
	)

	// Each site sees a stream of key hits; keys are uniformly busy
	// (the bias) except a few globally hot keys that heat up late in
	// the streams.
	hot := []int{1234, 99_999, 150_000}
	streams := make([][]stream.Update, sites)
	exact := make([]float64, n)
	for p := 0; p < sites; p++ {
		r := rand.New(rand.NewSource(int64(p + 1)))
		us := make([]stream.Update, perSite)
		for u := range us {
			var i int
			if u > perSite/2 && r.Intn(50) == 0 {
				i = hot[r.Intn(len(hot))] // late hot keys
			} else {
				i = r.Intn(n)
			}
			us[u] = stream.Update{I: i, Delta: 1}
			exact[i]++
		}
		streams[p] = us
	}

	cfg := core.L2Config{N: n, K: 2048, UseBiasHeap: true}
	mk := func() *core.L2SR { return core.NewL2SR(cfg, rand.New(rand.NewSource(42))) }

	fmt.Printf("%d sites × %d updates, sync every 50k per site\n\n", sites, perSite)
	final, st, err := distributed.Monitor(
		distributed.MonitorConfig{Sites: sites, SyncEvery: 50_000},
		mk,
		func(dst, src *core.L2SR) error { return dst.MergeFrom(src) },
		streams,
		func(round int, coord *core.L2SR) {
			fmt.Printf("round %d: coordinator bias %.2f, hot keys:", round, coord.Bias())
			for _, h := range hot {
				fmt.Printf("  x[%d]≈%.0f", h, coord.Query(h))
			}
			fmt.Println()
		})
	if err != nil {
		panic(err)
	}

	fmt.Printf("\ncommunication: %d words over %d rounds (naive per round: %d words)\n",
		st.CommWords, st.Rounds, sites*n)
	var worst float64
	for _, h := range hot {
		if e := math.Abs(final.Query(h) - exact[h]); e > worst {
			worst = e
		}
	}
	fmt.Printf("final hot-key worst error: %.0f (exact counts ~%.0f)\n", worst, exact[hot[0]])

}
