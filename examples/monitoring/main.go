// Continuous distributed monitoring on the delta-shipping aggregation
// tree: sixty-four collectors each ingest their local slice of a
// biased event stream and sync through a fan-in-4 tree every 10k local
// updates. Delta frames carry only the replica shards that changed
// since the last acknowledged hop, so quiet sites cost (almost)
// nothing; two collectors crash mid-run and rejoin from their last
// checkpoint with one full-state frame. The run is repeated with
// full-state shipping — the paper's sites × sketch-size communication
// baseline — to show the savings, with both coordinators answering
// bit-identically. The §1 distributed model and the §4.4 streaming
// model running together.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro"
)

const (
	n        = 200_000
	sites    = 64
	perSite  = 60_000
	syncStep = 10_000
)

func main() {
	// Each site sees a stream of key hits. Most sites are quiet tails;
	// a handful are hot and carry a few globally hot keys that heat up
	// late. Unit deltas keep every sum exact, so "bit-identical" below
	// is meant literally.
	hot := []int{1234, 99_999, 150_000}
	streams := make([][]repro.SiteUpdate, sites)
	exact := make([]float64, n)
	for p := 0; p < sites; p++ {
		r := rand.New(rand.NewSource(int64(p + 1)))
		length := perSite / 20 // quiet tail site
		if p%8 == 0 {
			length = perSite // hot site
		}
		us := make([]repro.SiteUpdate, length)
		for u := range us {
			var i int
			if u > length/2 && r.Intn(50) == 0 {
				i = hot[r.Intn(len(hot))] // late hot keys
			} else {
				i = r.Intn(n)
			}
			us[u] = repro.SiteUpdate{I: i, Delta: 1}
			exact[i]++
		}
		streams[p] = us
	}

	// Sites and coordinator agree on one configuration and seed —
	// the same contract as Marshal/Merge, managed by the fabric.
	opts := []repro.Option{repro.WithDim(n), repro.WithWords(8192), repro.WithSeed(42)}
	cfg := repro.MonitorConfig{
		SyncEvery:       syncStep,
		FanIn:           4,
		Shards:          8,
		CheckpointEvery: 1,
		// Two sites crash before round 2 and rejoin from their round-1
		// checkpoints, replaying what the checkpoint missed.
		Restarts: []repro.MonitorRestart{{Round: 2, Site: 8}, {Round: 2, Site: 31}},
	}

	fmt.Printf("%d sites (every 8th hot), fan-in %d tree, sync every %dk per site\n\n",
		sites, cfg.FanIn, syncStep/1000)

	// Delta-shipping run, watching the coordinator every round.
	est := make([]float64, len(hot))
	coord, delta, err := repro.Monitor("l2sr", cfg, streams, func(round int, c repro.Sketch) {
		beta, _ := repro.Bias(c)
		if err := repro.QueryBatch(c, hot, est); err != nil {
			panic(err)
		}
		fmt.Printf("round %d: coordinator bias %.2f, hot keys:", round, beta)
		for k, h := range hot {
			fmt.Printf("  x[%d]≈%.0f", h, est[k])
		}
		fmt.Println()
	}, opts...)
	if err != nil {
		panic(err)
	}

	// Full-state baseline: same fabric, complete site state every round.
	cfg.FullState = true
	fullCoord, full, err := repro.Monitor("l2sr", cfg, streams, nil, opts...)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\ndelta shipping:      %8d words over %d rounds (%d site restarts)\n",
		delta.CommWords, delta.Rounds, delta.Restarts)
	fmt.Printf("full-state baseline: %8d words over %d rounds (budget %d words/round = %d sites × %d-word sketch)\n",
		full.CommWords, full.Rounds, full.BudgetWordsPerRound, sites, full.SketchWords)
	fmt.Printf("savings: %.1fx overall", float64(full.CommWords)/float64(delta.CommWords))
	// Round 1 ships everyone's first state either way; steady state is
	// where the delta fabric earns its keep — quiet sites go silent.
	if last := len(delta.PerRound) - 1; last > 0 {
		fmt.Printf(", %.1fx in the final round\n",
			float64(full.PerRound[last].CommWords)/float64(delta.PerRound[last].CommWords))
	} else {
		fmt.Println()
	}

	for i := 0; i < n; i++ {
		if math.Float64bits(coord.Query(i)) != math.Float64bits(fullCoord.Query(i)) {
			panic("delta and full-state coordinators diverged")
		}
	}
	fmt.Println("delta and full-state coordinators are bit-identical")

	var worst float64
	for k, h := range hot {
		if e := math.Abs(est[k] - exact[h]); e > worst {
			worst = e
		}
	}
	fmt.Printf("final hot-key worst error: %.0f (exact counts ~%.0f)\n", worst, exact[hot[0]])
}
