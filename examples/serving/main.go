// Serving example: an in-process sketchd — the internal/server layer
// mounted on httptest — walked through its whole lifecycle: create a
// sharded sketch for a tenant, ingest wire-v2 batches over HTTP,
// answer point and top-k queries, checkpoint, drain, and boot a
// second server from the data directory that answers bit-identically.
// This is exactly what `sketchd -data <dir>` does across a restart,
// compressed into one runnable program.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"

	"repro"
	"repro/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "sketchd-example")
	check(err)
	defer os.RemoveAll(dir)

	srv, err := server.New(server.Config{DataDir: dir, MaxInflight: 8})
	check(err)
	ts := httptest.NewServer(srv.Handler())

	// Create a 4-shard ℓ2-S/R sketch for tenant "acme".
	post(ts.URL+"/v1/acme/sketches", "application/json",
		[]byte(`{"name":"clicks","kind":"sharded","algo":"l2sr","dim":100000,"words":4096,"shards":4,"seed":7}`))

	// Ingest 50 batches of integer-weighted updates (a few hot keys on
	// a long tail), wire-v2 framed, spread across shard slots.
	r := rand.New(rand.NewSource(1))
	for b := 0; b < 50; b++ {
		idx := make([]int, 500)
		deltas := make([]float64, 500)
		for j := range idx {
			if r.Intn(10) == 0 {
				idx[j] = r.Intn(10) // hot keys
			} else {
				idx[j] = r.Intn(100000)
			}
			deltas[j] = float64(1 + r.Intn(5))
		}
		var frame bytes.Buffer
		check(repro.EncodeBatch(&frame, idx, deltas))
		post(fmt.Sprintf("%s/v1/acme/sketches/clicks/ingest?slot=%d", ts.URL, b%4),
			"application/octet-stream", frame.Bytes())
	}

	est := get(ts.URL + "/v1/acme/sketches/clicks/query?i=3&i=77")
	fmt.Printf("estimates for keys 3 and 77: %s\n", est["estimates"])
	topk := get(ts.URL + "/v1/acme/sketches/clicks/topk?k=3")
	fmt.Printf("top-3 deviators: %s\n", topk["topk"])

	// Drain: final checkpoint lands in dir. Then boot a second server
	// from the same directory — the restored sketch answers the same
	// queries bit-identically.
	ts.Close()
	check(srv.Drain())

	srv2, err := server.New(server.Config{DataDir: dir})
	check(err)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	est2 := get(ts2.URL + "/v1/acme/sketches/clicks/query?i=3&i=77")
	same := fmt.Sprint(est["estimates"]) == fmt.Sprint(est2["estimates"])
	fmt.Printf("restored answers identical: %v\n", same)
	if !same {
		os.Exit(1)
	}
}

func post(url, ctype string, body []byte) {
	resp, err := http.Post(url, ctype, bytes.NewReader(body))
	check(err)
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		check(fmt.Errorf("POST %s: %s: %s", url, resp.Status, msg))
	}
	io.Copy(io.Discard, resp.Body)
}

func get(url string) map[string]json.RawMessage {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	check(json.NewDecoder(resp.Body).Decode(&m))
	return m
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serving example:", err)
		os.Exit(1)
	}
}
