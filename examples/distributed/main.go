// Distributed example: ten sites each observe a local share of a
// biased traffic vector; each ships a 40KB ℓ1-S/R sketch to the
// coordinator instead of its 8MB raw vector, and the coordinator
// recovers the global vector from the merged sketch (§1's model,
// exploiting linearity: Φx = Φx¹ + … + Φxᵗ).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/distributed"
	"repro/internal/sketch"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

func main() {
	const n, sites, k = 1_000_000, 10, 4096

	// Global vector: per-key event counts biased around 100, split
	// unevenly across sites.
	r := rand.New(rand.NewSource(1))
	global := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)
	locals := distributed.Split(global, sites)

	// All sites share seeds (the coordinator distributes hash
	// functions up front — §5.5 footnote 4).
	cfg := core.L1Config{N: n, K: k, SampleCount: 4 * k}
	mk := func() *core.L1SR { return core.NewL1SR(cfg, rand.New(rand.NewSource(7))) }

	merged, stats, err := distributed.Run(mk,
		func(dst, src *core.L1SR) error { return dst.MergeFrom(src) }, locals)
	if err != nil {
		panic(err)
	}

	fmt.Printf("sites: %d\n", stats.Sites)
	fmt.Printf("communication: %d words total (%d per site)\n",
		stats.TotalCommWords, stats.WordsPerSite)
	fmt.Printf("naive cost (raw vectors): %d words — sketching saves %.0fx\n\n",
		stats.NaiveCommWords, stats.CompressionFactor)

	fmt.Printf("coordinator bias estimate: %.2f (true bias 100)\n", merged.Bias())
	xhat := sketch.Recover(merged)
	fmt.Printf("global recovery: avg error %.3f, max error %.3f\n",
		vecmath.AvgAbsErr(global, xhat), vecmath.MaxAbsErr(global, xhat))

	for _, i := range []int{5, 500_000} {
		fmt.Printf("  global x[%7d] = %6.1f, recovered %8.2f\n", i, global[i], merged.Query(i))
	}
}
