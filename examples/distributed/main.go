// Distributed example: ten sites each observe a local share of a
// biased traffic vector; each ships its ℓ1-S/R sketch to the
// coordinator as wire-format bytes instead of its raw vector, and the
// coordinator unmarshals, merges (§1's model, exploiting linearity:
// Φx = Φx¹ + … + Φxᵗ), and recovers the global vector.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/workload"
)

func main() {
	const n, sites, words = 1_000_000, 10, 16_384

	// Global vector: per-key event counts biased around 100, split
	// unevenly across sites.
	r := rand.New(rand.NewSource(1))
	global := workload.Gaussian{Bias: 100, Sigma: 15}.Vector(n, r)
	locals := split(global, sites, r)

	// All sites build the same shape from the same seed (the
	// coordinator distributes the configuration up front — the shared-
	// randomness protocol of §5.5 footnote 4).
	opts := []repro.Option{repro.WithDim(n), repro.WithWords(words), repro.WithSeed(7)}

	// Each site sketches its local share and ships the bytes.
	var packets [][]byte
	for _, local := range locals {
		site := repro.MustNew("l1sr", opts...)
		repro.SketchVector(site, local)
		pkt, err := repro.Marshal(site)
		if err != nil {
			panic(err)
		}
		packets = append(packets, pkt)
	}

	// The coordinator reconstructs each site sketch and merges.
	merged := repro.MustNew("l1sr", opts...)
	var commWords int
	for _, pkt := range packets {
		site, err := repro.Unmarshal(pkt)
		if err != nil {
			panic(err)
		}
		if err := repro.Merge(merged, site); err != nil {
			panic(err)
		}
		commWords += site.Words()
	}

	fmt.Printf("sites: %d\n", sites)
	fmt.Printf("communication: %d words total (%d per site)\n", commWords, commWords/sites)
	naive := sites * n
	fmt.Printf("naive cost (raw vectors): %d words — sketching saves %.0fx\n\n",
		naive, float64(naive)/float64(commWords))

	beta, _ := repro.Bias(merged)
	fmt.Printf("coordinator bias estimate: %.2f (true bias 100)\n", beta)
	xhat := repro.Recover(merged)
	fmt.Printf("global recovery: avg error %.3f, max error %.3f\n",
		repro.AvgAbsErr(global, xhat), repro.MaxAbsErr(global, xhat))

	for _, i := range []int{5, 500_000} {
		fmt.Printf("  global x[%7d] = %6.1f, recovered %8.2f\n", i, global[i], merged.Query(i))
	}
}

// split deals the global vector into per-site shares: each
// coordinate's mass is divided between two random sites (so the merge
// genuinely sums overlapping coordinates, as in §1's model), and the
// site vectors add back to the global.
func split(global []float64, sites int, r *rand.Rand) [][]float64 {
	locals := make([][]float64, sites)
	for p := range locals {
		locals[p] = make([]float64, len(global))
	}
	for i, v := range global {
		locals[r.Intn(sites)][i] += v / 2
		locals[r.Intn(sites)][i] += v / 2
	}
	return locals
}
