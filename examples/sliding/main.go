// Sliding-window monitoring: a day of synthetic request traffic flows
// through a repro.Windowed sliding window (6 panes of 2 simulated
// hours — a 12-hour window) alongside an unbounded all-time sketch. A key that was
// scorching hot in the morning and then went quiet stays a top hitter
// forever in the all-time view — the windowed view forgets it as its
// panes expire, and surfaces the key that is hot *now*. This is the
// workload shape of real monitoring: "heaviest in the last N hours",
// not "heaviest since the process started".
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

const (
	n         = 100_000
	panes     = 6
	paneWidth = 2 * time.Hour
	perHour   = 40_000
)

func main() {
	// A fake clock the window rotates by: the demo replays a day of
	// traffic in milliseconds, deterministically.
	now := time.Date(2026, 7, 30, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }

	windowed, err := repro.NewWindowed(1, "l2sr",
		repro.WithDim(n), repro.WithWords(4096), repro.WithDepth(7),
		repro.WithPanes(panes), repro.WithPaneWidth(paneWidth),
		repro.WithClock(clock))
	if err != nil {
		panic(err)
	}
	allTime := repro.MustNew("l2sr",
		repro.WithDim(n), repro.WithWords(4096), repro.WithDepth(7))

	const morningHot, eveningHot = 7_777, 42_424
	r := rand.New(rand.NewSource(1))
	idx := make([]int, 0, perHour)
	deltas := make([]float64, 0, perHour)
	for hour := 0; hour < 24; hour++ {
		idx, deltas = idx[:0], deltas[:0]
		for u := 0; u < perHour; u++ {
			i := r.Intn(n) // uniform background crowd
			switch {
			case hour < 8 && r.Intn(4) == 0:
				i = morningHot // 00:00–08:00: one key takes ~25% of traffic
			case hour >= 16 && r.Intn(8) == 0:
				i = eveningHot // 16:00–24:00: a different key heats up
			}
			idx = append(idx, i)
			deltas = append(deltas, 1)
		}
		if err := windowed.UpdateBatch(0, idx, deltas); err != nil {
			panic(err)
		}
		if err := repro.UpdateBatch(allTime, idx, deltas); err != nil {
			panic(err)
		}
		now = now.Add(time.Hour) // the next touch rotates any due panes

		if hour == 7 || hour == 15 || hour == 23 {
			report(windowed, allTime, hour+1)
		}
	}
}

func report(windowed *repro.Windowed, allTime repro.Sketch, hour int) {
	wTop, err := windowed.TopK(1)
	if err != nil {
		panic(err)
	}
	aTop, err := repro.TopK(allTime, 1)
	if err != nil {
		panic(err)
	}
	wEst, err := windowed.Query(7_777)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%02d:00  last %2dh top key: %6d   all-time top key: %6d   morning key in window: %8.0f\n",
		hour, panes*2, wTop[0].Index, aTop[0].Index, wEst)
	if hour == 24 {
		fmt.Printf("       window holds %d live panes (%d words)\n", windowed.Live(), windowed.Words())
		if wTop[0].Index != 42_424 || aTop[0].Index != 7_777 {
			fmt.Println("       unexpected: windowed should surface the evening key, all-time the morning one")
		} else {
			fmt.Println("       windowed view surfaces the key that is hot NOW; all-time never forgets")
		}
	}
}
