package repro_test

// Fuzz layer for the mapped-checkpoint opener: OpenMmap parses an
// attacker-controlled file with manual bounds checks (no intermediate
// allocations, no panic recovery downstream of the mapping), so the
// contract under hostile bytes is strict — reject with an error, never
// panic, never allocate proportionally to claimed (rather than actual)
// sizes. Anything accepted must be a working read-only sketch whose
// re-marshaled bytes reload.

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// mustSketchFileSeed writes a valid aligned checkpoint and returns its
// bytes for the fuzz corpus.
func mustSketchFileSeed(f *testing.F, algo string) []byte {
	f.Helper()
	sk, err := repro.New(algo, repro.WithDim(300), repro.WithWords(16), repro.WithDepth(3), repro.WithSeed(9))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 300; i += 3 {
		sk.Update(i, float64(1+i%7))
	}
	path := filepath.Join(f.TempDir(), "seed.bas2")
	if err := repro.WriteSketchFile(path, sk); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzOpenMmap maps fuzzed bytes as a checkpoint file. The parser sees
// exactly the fuzzer's bytes through the page cache, so every header,
// section length, and alignment decision is exercised against hostile
// input.
func FuzzOpenMmap(f *testing.F) {
	for _, algo := range []string{"countmin", "countsketch", "dengrafiei"} {
		valid := mustSketchFileSeed(f, algo)
		f.Add(valid)
		// Truncations at structurally interesting offsets.
		for _, cut := range []int{1, 4, 9, 14, 36, len(valid) / 2, len(valid) - 1} {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
		// Single-byte corruptions in header, descriptor, and state.
		for _, pos := range []int{0, 4, 5, 10, 20, len(valid) - 8} {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 0xFF
			f.Add(mut)
		}
		// Trailing garbage: the state section must span exactly to EOF.
		f.Add(append(append([]byte(nil), valid...), 0xAB))
	}
	f.Add([]byte{})
	f.Add([]byte("BAS2"))
	f.Add([]byte("BAS1\x01\x00\x00\x00\x03"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.bas2")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		sk, closeMap, err := repro.OpenMmap(path)
		if err != nil {
			return // rejected without panicking: the contract
		}
		defer func() {
			if err := closeMap(); err != nil {
				t.Fatalf("close: %v", err)
			}
		}()
		if sk == nil {
			t.Fatal("nil sketch with nil error")
		}
		if repro.BackendOf(sk) != repro.BackendMmap {
			t.Fatalf("accepted sketch reports backend %v", repro.BackendOf(sk))
		}
		_ = sk.Query(0)
		re, err := repro.Marshal(sk)
		if err != nil {
			t.Fatalf("accepted checkpoint does not re-marshal: %v", err)
		}
		if _, err := repro.Unmarshal(re); err != nil {
			t.Fatalf("re-marshaled checkpoint does not reload: %v", err)
		}
	})
}
