package repro_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro"
)

func TestFacadeBatchRoundTripIntoSketch(t *testing.T) {
	idx := []int{1, 5, 9, 5}
	deltas := []float64{2, 3, -1, 4}
	var buf bytes.Buffer
	if err := repro.EncodeBatch(&buf, idx, deltas); err != nil {
		t.Fatal(err)
	}

	gi, gd, err := repro.DecodeBatch(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := repro.New("countmin", repro.WithDim(10), repro.WithWords(64), repro.WithDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.UpdateBatch(sk, gi, gd); err != nil {
		t.Fatal(err)
	}
	if got := sk.Query(5); got != 7 {
		t.Fatalf("Query(5) = %v after decoded batch, want 7", got)
	}
}

func TestFacadeBatchErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := repro.EncodeBatch(&buf, []int{1, 2}, []float64{1}); !errors.Is(err, repro.ErrBadBatch) {
		t.Errorf("length mismatch: got %v, want ErrBadBatch", err)
	}

	buf.Reset()
	if err := repro.EncodeBatch(&buf, []int{3}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	// Index 3 is out of range for a dim-2 sketch: the decode must fail
	// closed with a repro-prefixed error.
	if _, _, err := repro.DecodeBatch(&buf, 2); err == nil {
		t.Error("out-of-range index decoded without error")
	} else if !strings.HasPrefix(err.Error(), "repro: ") {
		t.Errorf("boundary error %q lacks repro prefix", err)
	}

	if _, _, err := repro.DecodeBatch(bytes.NewReader([]byte("garbage")), 2); err == nil {
		t.Error("garbage decoded without error")
	}
}
