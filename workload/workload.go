// Package workload is the public face of the synthetic dataset
// generators reproducing the seven evaluation workloads of §5.1, plus
// loaders for vectors materialized to disk. The types are aliases of
// the internal implementations, so values interoperate with everything
// inside the module while outside consumers never import
// repro/internal/... directly.
package workload

import "repro/internal/workload"

// Generator produces a synthetic frequency vector.
type Generator = workload.Generator

// Gaussian is the paper's Gaussian dataset: x_i ~ N(Bias, Sigma²).
type Gaussian = workload.Gaussian

// GaussianShifted is Gaussian2: a Gaussian crowd with ShiftCount
// coordinates lifted by ShiftBy — planted outliers.
type GaussianShifted = workload.GaussianShifted

// WorldCupLike mimics the WorldCup98 per-second request counts.
type WorldCupLike = workload.WorldCupLike

// WikiLike mimics the Wikipedia per-page edit counts.
type WikiLike = workload.WikiLike

// HiggsLike mimics the Higgs Twitter mention stream.
type HiggsLike = workload.HiggsLike

// MemeLike mimics the Memetracker phrase counts.
type MemeLike = workload.MemeLike

// HudongLike mimics the Hudong "related-to" edge stream; see
// EdgeStream for the streaming form.
type HudongLike = workload.HudongLike

// ZipfLike is a heavy-tailed non-biased control workload.
type ZipfLike = workload.ZipfLike

// ReadVector parses a vector from r, one value per line.
var ReadVector = workload.ReadVector

// ReadVectorFile parses a vector file written by cmd/datagen.
var ReadVectorFile = workload.ReadVectorFile
