// Smoke test for the public workload shim: the aliases must construct
// and generate through the public names alone, with no repro/internal
// imports.
package workload_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/workload"
)

func TestGeneratorsProduceVectors(t *testing.T) {
	const n = 500
	gens := map[string]workload.Generator{
		"gaussian":  workload.Gaussian{Bias: 100, Sigma: 15},
		"gaussian2": workload.GaussianShifted{Bias: 100, Sigma: 15, ShiftCount: 5, ShiftBy: 1000},
		"worldcup":  workload.WorldCupLike{},
		"wiki":      workload.WikiLike{},
		"higgs":     workload.HiggsLike{},
		"meme":      workload.MemeLike{},
		"zipf":      workload.ZipfLike{},
	}
	for name, g := range gens {
		x := g.Vector(n, rand.New(rand.NewSource(1)))
		if len(x) != n {
			t.Errorf("%s: vector length %d, want %d", name, len(x), n)
			continue
		}
		var nonzero int
		for _, v := range x {
			if v != 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			t.Errorf("%s: all-zero vector", name)
		}
	}
}

func TestHudongEdgeStream(t *testing.T) {
	const articles = 200
	edges := workload.HudongLike{}.EdgeStream(articles, rand.New(rand.NewSource(2)))
	if len(edges) == 0 {
		t.Fatal("empty edge stream")
	}
	for _, src := range edges {
		if src < 0 || src >= articles {
			t.Fatalf("edge source %d out of range [0,%d)", src, articles)
		}
	}
}

func TestReadVectorRoundTrip(t *testing.T) {
	x, err := workload.ReadVector(strings.NewReader("1.5\n-2\n0\n3e2\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2, 0, 300}
	if len(x) != len(want) {
		t.Fatalf("parsed %d values, want %d", len(x), len(want))
	}
	for i := range want {
		if x[i] != want[i] {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if _, err := workload.ReadVector(strings.NewReader("1\nnot-a-number\n")); err == nil {
		t.Error("garbage line should fail")
	}
}
