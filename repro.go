package repro

import (
	"errors"
	"fmt"

	"repro/internal/codec"
	"repro/internal/heavyhitter"
	"repro/internal/registry"
	"repro/internal/sketch"
	"repro/internal/vecmath"
)

// Sketch is a summary of a frequency vector x ∈ R^n supporting point
// updates and point queries — the protocol every algorithm in the
// paper shares (S(x) builds the summary, R recovers from it, §1).
//
// A Sketch produced by New may additionally satisfy Linear,
// Serializable, or Biased; assert for the capability or use the
// package-level helpers (Merge, Marshal, Bias), which return typed
// errors when the capability is absent.
type Sketch interface {
	// Update applies x[i] += delta. i must be in [0, Dim()).
	Update(i int, delta float64)
	// Query returns an estimate of x[i].
	Query(i int) float64
	// Dim returns n, the dimension of the summarized vector.
	Dim() int
	// Words returns the sketch size in 64-bit words.
	Words() int
	// Algo returns the canonical algorithm name, e.g. "l2sr".
	Algo() string
}

// BatchUpdater is a sketch with a native batched ingestion path:
// UpdateBatch applies x[idx[j]] += deltas[j] for every j and leaves
// exactly the state of the equivalent element-wise Update loop, at a
// fraction of the cost (row-major traversal keeps each counter row
// cache-hot and loads each row's hash coefficients once per batch
// instead of once per element). Every sketch New constructs implements
// it; the package-level UpdateBatch helper falls back to an update
// loop for foreign Sketch implementations without the capability.
type BatchUpdater interface {
	Sketch
	// UpdateBatch applies x[idx[j]] += deltas[j] for every j. The two
	// slices must have equal length and every index must be in
	// [0, Dim()); the whole batch is validated before any counter
	// moves, so a panic cannot leave the sketch partially updated.
	UpdateBatch(idx []int, deltas []float64)
}

// BatchQuerier is the read-side twin of BatchUpdater: a sketch with a
// native batched query path. QueryBatch writes an estimate of
// x[idx[j]] into out[j] for every j, bit-identical to the equivalent
// element-wise Query loop, at a fraction of the cost — the same
// row-major traversal as batched ingestion loads each row's hash (and
// sign) coefficients once per batch and keeps the counter rows
// cache-hot while every element's buckets are gathered; the
// per-element median/min/bias-correction step then runs over the
// gathered values. Every sketch New constructs implements it; the
// package-level QueryBatch helper falls back to a Query loop for
// foreign Sketch implementations without the capability.
type BatchQuerier interface {
	Sketch
	// QueryBatch writes an estimate of x[idx[j]] into out[j] for every
	// j. The two slices must have equal length and every index must be
	// in [0, Dim()); the whole batch is validated before out is
	// written.
	QueryBatch(idx []int, out []float64)
}

// Linear is a sketch with the linearity property Φ(x+y) = Φx + Φy,
// hence mergeable: sites sketch their local vectors and a coordinator
// sums the sketches (the distributed model of §1). The conservative-
// update baselines (cmcu, cmlcu) are deliberately *not* Linear — that
// is the drawback §2 points out for the distributed setting.
type Linear interface {
	Sketch
	// Merge adds other's state into the receiver. Both sketches must
	// come from the same New call shape: same algorithm, dimension,
	// words, depth, and seed. Mismatches return ErrIncompatible.
	Merge(other Sketch) error
}

// Serializable is a Linear sketch that also round-trips through the
// wire format — the full site→coordinator contract: ship bytes, load,
// merge. (Non-linear sketches can still be saved and restored locally
// with Marshal/Unmarshal; Serializable marks the ones that are safe to
// exchange between sites.)
type Serializable interface {
	Linear
	// MarshalBinary serializes the sketch in the self-describing wire
	// format; repro.Unmarshal reconstructs it.
	MarshalBinary() ([]byte, error)
}

// Biased is a bias-aware sketch (l1sr, l2sr and their mean variants):
// it additionally estimates the bias β̂ = argmin_β Err_p^k(x − β), the
// quantity the paper's ℓ1-S/R and ℓ2-S/R subtract before sketching.
type Biased interface {
	Serializable
	// Bias returns the current estimate of the data's bias β.
	Bias() float64
}

// Typed capability and lookup errors.
var (
	// ErrUnknownAlgorithm is returned by New for names the registry
	// does not resolve; Algorithms lists the valid ones.
	ErrUnknownAlgorithm = errors.New("repro: unknown algorithm")
	// ErrNotLinear is returned by Merge when either sketch is a
	// non-linear algorithm (cmcu, cmlcu): conservative update loses
	// the property Φ(x+y) = Φx + Φy, so there is no meaningful sum.
	ErrNotLinear = errors.New("repro: sketch is not linear")
	// ErrIncompatible is returned by Merge when two linear sketches do
	// not share algorithm, shape, and seed.
	ErrIncompatible = sketch.ErrIncompatible
	// ErrNoBias is returned by Bias, Scan, and TopK for sketches that
	// do not estimate a bias.
	ErrNoBias = errors.New("repro: sketch has no bias estimate")
	// ErrNotSerializable is returned by Marshal for sketches whose
	// state the wire format does not carry (exact).
	ErrNotSerializable = errors.New("repro: sketch is not serializable")
	// ErrTrailingData is returned by Unmarshal when a buffer holds
	// bytes beyond the one payload it should contain. Streams carrying
	// multiple frames decode through UnmarshalFrom/Decode instead.
	ErrTrailingData = errors.New("repro: trailing data after payload")
	// ErrBadBatch is returned by the batched entry points when the
	// index slice and its paired delta/output slice differ in length;
	// nothing is applied or written.
	ErrBadBatch = errors.New("repro: batch slice lengths differ")
	// ErrForeignSketch is returned by Encode, Checkpoint, and the
	// other state-bearing entry points when handed a Sketch
	// implementation that was not built by this package's
	// constructors and so carries no serializable state.
	ErrForeignSketch = errors.New("repro: sketch was not built by repro.New")
	// ErrNilLevel is returned by NewRange when the level factory
	// returns nil for some dyadic level.
	ErrNilLevel = errors.New("repro: level factory returned nil")
)

// handle is the base facade wrapper: the constructed sketch plus the
// descriptor needed to rebuild it on the other end of a wire.
type handle struct {
	inner sketch.Sketch
	entry *registry.Entry
	desc  codec.Desc
}

func (h *handle) Update(i int, delta float64) { h.inner.Update(i, delta) }
func (h *handle) Query(i int) float64         { return h.inner.Query(i) }

// UpdateBatch forwards to the inner sketch's native batched path
// (every registry algorithm has one; sketch.UpdateBatch degrades to an
// element-wise loop for any that does not).
func (h *handle) UpdateBatch(idx []int, deltas []float64) {
	sketch.UpdateBatch(h.inner, idx, deltas)
}

// QueryBatch forwards to the inner sketch's native batched query path
// (every registry algorithm has one; sketch.QueryBatch degrades to an
// element-wise loop for any that does not).
func (h *handle) QueryBatch(idx []int, out []float64) {
	sketch.QueryBatch(h.inner, idx, out)
}
func (h *handle) Dim() int     { return h.inner.Dim() }
func (h *handle) Words() int   { return h.inner.Words() }
func (h *handle) Algo() string { return h.entry.Name }
func (h *handle) String() string {
	return fmt.Sprintf("%s(n=%d s=%d d=%d)", h.entry.Name, h.desc.N, h.desc.S, h.desc.D)
}

// base lets the package helpers unwrap any handle flavor.
func (h *handle) base() *handle { return h }

type baser interface{ base() *handle }

// linearHandle adds Merge (exact — linear but not serializable).
type linearHandle struct{ handle }

func (h *linearHandle) Merge(other Sketch) error { return mergeHandles(&h.handle, other) }

// serialHandle adds the wire format (the linear baselines).
type serialHandle struct{ linearHandle }

func (h *serialHandle) MarshalBinary() ([]byte, error) { return Marshal(h) }

// biasedHandle adds the bias estimate (l1sr, l2sr, l1mean, l2mean).
type biasedHandle struct{ serialHandle }

func (h *biasedHandle) Bias() float64 {
	return h.inner.(interface{ Bias() float64 }).Bias()
}

// wrap picks the handle flavor matching the entry's capabilities, so
// type assertions against Linear/Serializable/Biased are meaningful.
func wrap(e *registry.Entry, inner sketch.Sketch, desc codec.Desc) Sketch {
	h := handle{inner: inner, entry: e, desc: desc}
	switch {
	case e.Bias:
		return &biasedHandle{serialHandle{linearHandle{h}}}
	case e.Linear && serializableInner(inner):
		return &serialHandle{linearHandle{h}}
	case e.Linear:
		return &linearHandle{h}
	default:
		return &h
	}
}

func serializableInner(inner sketch.Sketch) bool {
	_, err := registry.State(inner)
	return err == nil
}

// New constructs the named algorithm with the functional options.
// WithDim is required; WithWords, WithDepth, and WithSeed default to
// 4096, 9, and 1 (the paper's §5.1 shape). Every algorithm follows the
// equal-words sizing protocol: at a given (words, depth) setting each
// consumes (depth+1)·words 64-bit words, so size-versus-accuracy
// comparisons across algorithms are apples to apples.
//
// Algorithm names (see Algorithms): "l1sr", "l2sr", "l1mean",
// "l2mean", "countmin", "countmedian", "countsketch", "cmcu", "cmlcu",
// "dengrafiei", "exact". The paper's legend names ("l2-S/R", "CM-CU",
// …) are accepted as aliases.
func New(algo string, opts ...Option) (Sketch, error) {
	e, ok := registry.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("%w: %q (valid: %v)", ErrUnknownAlgorithm, algo, Algorithms())
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	inner, err := registry.SafeNewBackend(e.Name, cfg.shape(),
		sketch.Backend{Kind: cfg.backend})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	desc := codec.Desc{Algo: e.Name, N: cfg.dim, S: cfg.words, D: cfg.depth, Seed: cfg.seed, Hash: cfg.hash, Backend: cfg.backend}
	return wrap(e, inner, desc), nil
}

// MustNew is New that panics on error, for tooling and examples where
// the configuration is static.
func MustNew(algo string, opts ...Option) Sketch {
	s, err := New(algo, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Exact returns the ground-truth "sketch": a dense vector of n exact
// counters. It is Linear (merging adds vectors) and useful as the
// reference in tests and demos; it is not Serializable — there is
// nothing sketched to ship.
func Exact(n int) Sketch {
	return MustNew(registry.Exact, WithDim(n))
}

// Algorithms returns the canonical names of every algorithm New can
// construct, sorted.
func Algorithms() []string { return registry.Names() }

// IsLinear reports whether the named algorithm produces mergeable
// sketches, without constructing one.
func IsLinear(algo string) bool {
	e, ok := registry.Lookup(algo)
	return ok && e.Linear
}

// recoverChunk is the batch size Recover feeds through the batched
// query path: large enough to amortize per-row coefficient loads,
// small enough that the per-chunk scratch stays cache-resident.
const recoverChunk = 1024

// Recover reconstructs the full estimate vector x̂ by querying every
// coordinate — the recovery phase R(Φx) of §1. It runs through the
// sketch's batched query path when there is one; QueryBatch is
// bit-identical to the Query loop, so the result never depends on the
// path taken.
func Recover(s Sketch) []float64 {
	out := make([]float64, s.Dim())
	bq, ok := s.(BatchQuerier)
	if !ok {
		for i := range out {
			out[i] = s.Query(i)
		}
		return out
	}
	idx := make([]int, recoverChunk)
	for base := 0; base < len(out); base += recoverChunk {
		m := recoverChunk
		if rem := len(out) - base; rem < m {
			m = rem
		}
		for j := 0; j < m; j++ {
			idx[j] = base + j
		}
		bq.QueryBatch(idx[:m], out[base:base+m])
	}
	return out
}

// UpdateBatch applies x[idx[j]] += deltas[j] for every j, using s's
// native batched path when it has one (every sketch New constructs
// does) and an element-wise update loop otherwise. A length mismatch
// returns an error before any update is applied. This is the
// high-throughput ingestion entry point: amortize per-element costs by
// feeding elements in batches of a few hundred to a few thousand.
func UpdateBatch(s Sketch, idx []int, deltas []float64) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("%w: %d indexes, %d deltas", ErrBadBatch, len(idx), len(deltas))
	}
	if b, ok := s.(BatchUpdater); ok {
		b.UpdateBatch(idx, deltas)
		return nil
	}
	for j, i := range idx {
		s.Update(i, deltas[j])
	}
	return nil
}

// QueryBatch writes an estimate of x[idx[j]] into out[j] for every j,
// using s's native batched query path when it has one (every sketch
// New constructs does) and an element-wise Query loop otherwise — the
// two are bit-identical. A length mismatch returns an error before
// anything is written. This is the high-throughput serving entry
// point: amortize per-query hash-coefficient loads by asking for
// estimates in batches of a few hundred to a few thousand.
func QueryBatch(s Sketch, idx []int, out []float64) error {
	if len(idx) != len(out) {
		return fmt.Errorf("%w: %d indexes, %d outputs", ErrBadBatch, len(idx), len(out))
	}
	if b, ok := s.(BatchQuerier); ok {
		b.QueryBatch(idx, out)
		return nil
	}
	for j, i := range idx {
		out[j] = s.Query(i)
	}
	return nil
}

// SketchVector feeds a dense frequency vector into s, one update per
// non-zero coordinate. It delegates to the internal implementation, so
// the facade and internal paths cannot drift: both return an error on
// length mismatch before any update is applied.
func SketchVector(s Sketch, x []float64) error {
	return sketch.SketchVector(s, x)
}

// Bias returns the sketch's bias estimate β̂, or ErrNoBias for
// algorithms that do not track one.
func Bias(s Sketch) (float64, error) {
	b, ok := s.(interface{ Bias() float64 })
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoBias, s.Algo())
	}
	return b.Bias(), nil
}

// Deviator is one reported outlier: a coordinate whose estimate sits
// far from the bias. On biased data this — not "largest coordinate" —
// is the meaningful heavy-hitter notion (§1).
type Deviator = heavyhitter.Deviator

// TopK returns the k coordinates deviating most from the bias
// estimate, sorted by decreasing deviation. ErrNoBias unless s is
// bias-aware.
func TopK(s Sketch, k int) ([]Deviator, error) {
	b, ok := s.(heavyhitter.BiasedSketch)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoBias, s.Algo())
	}
	return heavyhitter.TopK(b, k), nil
}

// Scan returns every coordinate whose estimated deviation from the
// bias exceeds threshold, sorted by decreasing deviation. ErrNoBias
// unless s is bias-aware.
func Scan(s Sketch, threshold float64) ([]Deviator, error) {
	b, ok := s.(heavyhitter.BiasedSketch)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoBias, s.Algo())
	}
	return heavyhitter.Scan(b, threshold), nil
}

// AvgAbsErr returns the mean absolute difference between a vector and
// its recovery — the y-axis of the paper's accuracy plots.
func AvgAbsErr(x, xhat []float64) float64 { return vecmath.AvgAbsErr(x, xhat) }

// MaxAbsErr returns the ℓ∞ recovery error, the quantity the paper's
// theorems bound.
func MaxAbsErr(x, xhat []float64) float64 { return vecmath.MaxAbsErr(x, xhat) }
